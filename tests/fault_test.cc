// Fault-injection and recovery suite (src/fault/fault.h + system wiring).
//
// Two invariants anchor the fault layer:
//   1. Zero plan == no plan: a FaultPlan with all probabilities at zero must
//      leave every observable — fired windows bit for bit, EpochStats,
//      broker topic byte counters — identical to a system with no plan at
//      all, in both pipeline modes.
//   2. Under any seeded plan the run completes without deadlock, the
//      streaming and barrier modes produce identical results (fault
//      decisions are (seed, MID, proxy) hashes, never wall-clock or thread
//      order), and the true population count stays inside the fault-widened
//      confidence interval.
//
// The chaos matrix in CI replays this suite across seeds under TSan; the
// PRIVAPPROX_CHAOS_SEED env var narrows the seed loop to one seed per job
// and PRIVAPPROX_FAULT_SUMMARY appends a JSON summary line per run for the
// workflow artifact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/error_estimation.h"
#include "fault/fault.h"
#include "system/system.h"

namespace privapprox::system {
namespace {

constexpr size_t kNumClients = 400;
constexpr size_t kNumProxies = 3;
constexpr double kSpeed = 25.0;   // every client -> bucket 2 of [0,100)/10
constexpr size_t kTrueBucket = 2;

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(5000)
      .WithWindowMs(10000)
      .WithSlideMs(10000)  // tumbling: each epoch in exactly one window
      .Build();
}

SystemConfig BaseConfig(EpochPipelineMode mode,
                        std::optional<fault::FaultPlan> plan,
                        size_t agg_shards = 1) {
  SystemConfig config;
  config.num_clients = kNumClients;
  config.num_proxies = kNumProxies;
  config.seed = 99;
  config.confidence = 0.99;
  config.pipeline.mode = mode;
  config.pipeline.num_worker_threads = 4;
  config.pipeline.depth = 2;
  config.pipeline.shard_size = 64;  // 400 clients -> 7 in-flight shards
  config.aggregator.num_shards = agg_shards;
  config.fault = std::move(plan);
  return config;
}

// The full observable output of one epoch schedule: per-epoch stats, fired
// windows, per-topic counters, and registry totals for the fault families.
struct RunSnapshot {
  std::vector<EpochStats> epochs;
  std::vector<aggregator::WindowedResult> results;
  std::vector<std::string> topic_names;
  std::vector<broker::TopicMetrics> topic_metrics;
  std::vector<std::pair<std::string, uint64_t>> fault_counters;
};

const char* const kFaultCounterNames[] = {
    "privapprox_fault_shares_dropped_total",
    "privapprox_fault_shares_corrupted_total",
    "privapprox_fault_shares_duplicated_total",
    "privapprox_fault_shares_delayed_total",
    "privapprox_fault_forward_timeouts_total",
    "privapprox_fault_proxy_crashes_total",
    "privapprox_fault_lost_mids_total",
    "privapprox_fault_expired_mids_total",
    "privapprox_recovery_retries_total",
    "privapprox_recovery_failovers_total",
    "privapprox_recovery_late_delivered_total",
};

RunSnapshot RunScenario(EpochPipelineMode mode,
                        std::optional<fault::FaultPlan> plan,
                        size_t agg_shards = 1) {
  const bool has_plan = plan.has_value();
  PrivApproxSystem sys(BaseConfig(mode, std::move(plan), agg_shards));
  for (size_t i = 0; i < kNumClients; ++i) {
    auto& db = sys.client(i).database();
    db.CreateTable("vehicle", {"speed"});
    db.GetTable("vehicle").Insert(500, {localdb::Value(kSpeed)});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  sys.SubmitQuery(SpeedQuery(), params);

  RunSnapshot snapshot;
  // Four epochs, tumbling 10s windows. The final epoch at 20000 exists so
  // shares the degraded link deferred out of epoch 15000 are replayed and
  // window [10000, 20000) closes complete; watermarks advance after the
  // replaying epoch ran.
  for (int64_t now = 5000; now <= 20000; now += 5000) {
    for (size_t i = 0; i < kNumClients; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          now - 100, {localdb::Value(kSpeed)});
    }
    snapshot.epochs.push_back(sys.RunEpoch(now));
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  snapshot.results = sys.TakeResults();
  for (const std::string& name : sys.broker().TopicNames()) {
    snapshot.topic_names.push_back(name);
    snapshot.topic_metrics.push_back(sys.broker().GetTopic(name).metrics());
  }
  if (has_plan) {
    for (const char* name : kFaultCounterNames) {
      snapshot.fault_counters.emplace_back(
          name, sys.metrics_registry().GetCounter(name, "").Value());
    }
  }
  return snapshot;
}

void ExpectEpochStatsEqual(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.shares_sent, b.shares_sent);
  EXPECT_EQ(a.shares_forwarded, b.shares_forwarded);
  EXPECT_EQ(a.shares_consumed, b.shares_consumed);
  EXPECT_EQ(a.malformed_dropped, b.malformed_dropped);
  EXPECT_EQ(a.fault_shares_dropped, b.fault_shares_dropped);
  EXPECT_EQ(a.fault_shares_corrupted, b.fault_shares_corrupted);
  EXPECT_EQ(a.fault_shares_duplicated, b.fault_shares_duplicated);
  EXPECT_EQ(a.fault_shares_delayed, b.fault_shares_delayed);
  EXPECT_EQ(a.fault_forward_timeouts, b.fault_forward_timeouts);
  EXPECT_EQ(a.fault_proxy_crashes, b.fault_proxy_crashes);
  EXPECT_EQ(a.fault_lost_mids, b.fault_lost_mids);
  EXPECT_EQ(a.recovery_retries, b.recovery_retries);
  EXPECT_EQ(a.recovery_failovers, b.recovery_failovers);
  EXPECT_EQ(a.recovery_late_delivered, b.recovery_late_delivered);
}

// Fired windows bit for bit: same windows, same doubles.
void ExpectResultsIdentical(const RunSnapshot& a, const RunSnapshot& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  ASSERT_GT(a.results.size(), 0u);
  for (size_t w = 0; w < a.results.size(); ++w) {
    const auto& ra = a.results[w];
    const auto& rb = b.results[w];
    EXPECT_EQ(ra.window, rb.window);
    EXPECT_EQ(ra.result.participants, rb.result.participants);
    EXPECT_EQ(ra.result.lost_to_faults, rb.result.lost_to_faults);
    ASSERT_EQ(ra.result.buckets.size(), rb.result.buckets.size());
    for (size_t i = 0; i < ra.result.buckets.size(); ++i) {
      EXPECT_EQ(ra.result.buckets[i].estimate.value,
                rb.result.buckets[i].estimate.value);
      EXPECT_EQ(ra.result.buckets[i].estimate.error,
                rb.result.buckets[i].estimate.error);
      EXPECT_EQ(ra.result.buckets[i].randomized_count,
                rb.result.buckets[i].randomized_count);
    }
  }
}

// ----------------------------------------------- invariant 1: bit identity

TEST(FaultTest, ZeroPlanIsBitIdenticalToNoPlan) {
  for (const auto mode : {EpochPipelineMode::kBarrier,
                          EpochPipelineMode::kStreaming}) {
    SCOPED_TRACE(mode == EpochPipelineMode::kBarrier ? "barrier"
                                                     : "streaming");
    const RunSnapshot without = RunScenario(mode, std::nullopt);
    // All probabilities default to zero: the injector routes every share to
    // its primary untouched and no standby proxies are created.
    const RunSnapshot with_zero = RunScenario(mode, fault::FaultPlan{});

    ExpectResultsIdentical(without, with_zero);
    ASSERT_EQ(without.epochs.size(), with_zero.epochs.size());
    for (size_t e = 0; e < without.epochs.size(); ++e) {
      ExpectEpochStatsEqual(without.epochs[e], with_zero.epochs[e]);
    }
    // Identical topic set (no standby topics) and identical byte counters
    // in both directions.
    ASSERT_EQ(without.topic_names, with_zero.topic_names);
    for (size_t t = 0; t < without.topic_metrics.size(); ++t) {
      EXPECT_EQ(without.topic_metrics[t].records_in,
                with_zero.topic_metrics[t].records_in)
          << without.topic_names[t];
      EXPECT_EQ(without.topic_metrics[t].bytes_in,
                with_zero.topic_metrics[t].bytes_in)
          << without.topic_names[t];
      EXPECT_EQ(without.topic_metrics[t].records_out,
                with_zero.topic_metrics[t].records_out)
          << without.topic_names[t];
      EXPECT_EQ(without.topic_metrics[t].bytes_out,
                with_zero.topic_metrics[t].bytes_out)
          << without.topic_names[t];
    }
    // Every fault counter stayed at zero.
    for (const auto& [name, value] : with_zero.fault_counters) {
      EXPECT_EQ(value, 0u) << name;
    }
  }
}

// ------------------------------------------------- invariant 2: chaos runs

fault::FaultPlan ChaosPlan(uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = 0.03;
  plan.corrupt_probability = 0.02;
  plan.duplicate_probability = 0.04;
  plan.delay_probability = 0.03;
  plan.timeout_probability = 0.10;
  plan.crash_probability = 0.25;
  plan.crash_point = 0.5;
  plan.retry.max_attempts = 3;
  plan.retry.base_backoff_ms = 10.0;
  plan.standby_proxies = true;
  return plan;
}

uint64_t CounterValue(const RunSnapshot& snapshot, const std::string& name) {
  for (const auto& [counter, value] : snapshot.fault_counters) {
    if (counter == name) {
      return value;
    }
  }
  ADD_FAILURE() << "no counter " << name;
  return 0;
}

std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("PRIVAPPROX_CHAOS_SEED")) {
    return {std::stoull(env)};
  }
  return {1, 2, 3, 4};
}

void MaybeAppendSummary(uint64_t seed, const char* mode,
                        const RunSnapshot& snapshot) {
  const char* path = std::getenv("PRIVAPPROX_FAULT_SUMMARY");
  if (path == nullptr) {
    return;
  }
  std::ofstream out(path, std::ios::app);
  out << "{\"seed\":" << seed << ",\"mode\":\"" << mode << "\"";
  for (const auto& [name, value] : snapshot.fault_counters) {
    out << ",\"" << name << "\":" << value;
  }
  out << ",\"windows\":" << snapshot.results.size() << "}\n";
}

TEST(FaultTest, ChaosSeedsRecoverWithinWidenedCI) {
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunSnapshot barrier =
        RunScenario(EpochPipelineMode::kBarrier, ChaosPlan(seed));
    const RunSnapshot streaming =
        RunScenario(EpochPipelineMode::kStreaming, ChaosPlan(seed));
    MaybeAppendSummary(seed, "barrier", barrier);
    MaybeAppendSummary(seed, "streaming", streaming);

    // Mode equivalence: fault decisions are (seed, MID, proxy) hashes and
    // every counter is additive, so results, stats, and fault totals agree
    // across pipeline shapes.
    ExpectResultsIdentical(barrier, streaming);
    ASSERT_EQ(barrier.epochs.size(), streaming.epochs.size());
    for (size_t e = 0; e < barrier.epochs.size(); ++e) {
      ExpectEpochStatsEqual(barrier.epochs[e], streaming.epochs[e]);
    }
    EXPECT_EQ(barrier.fault_counters, streaming.fault_counters);

    // The plan genuinely exercised injection and recovery.
    EXPECT_GT(CounterValue(barrier, "privapprox_fault_shares_dropped_total"),
              0u);
    EXPECT_GT(CounterValue(barrier, "privapprox_fault_shares_corrupted_total"),
              0u);
    EXPECT_GT(CounterValue(barrier, "privapprox_fault_forward_timeouts_total"),
              0u);
    EXPECT_GT(CounterValue(barrier, "privapprox_fault_lost_mids_total"), 0u);
    EXPECT_GT(CounterValue(barrier, "privapprox_recovery_retries_total"), 0u);
    EXPECT_GT(CounterValue(barrier, "privapprox_recovery_failovers_total"),
              0u);
    EXPECT_GT(
        CounterValue(barrier, "privapprox_recovery_late_delivered_total"), 0u);
    // Corrupted records surface as malformed drops at the decode stage.
    uint64_t malformed = 0;
    for (const auto& stats : barrier.epochs) {
      malformed += stats.malformed_dropped;
    }
    EXPECT_GE(malformed,
              CounterValue(barrier, "privapprox_fault_shares_corrupted_total"));

    // Honest accounting under loss: every client holds kSpeed, so the true
    // population count for the target bucket is kNumClients in every
    // window. The fault-widened interval must cover it.
    ASSERT_GT(barrier.results.size(), 0u);
    bool any_lost = false;
    for (const auto& windowed : barrier.results) {
      const auto& bucket = windowed.result.buckets[kTrueBucket];
      EXPECT_LE(std::abs(bucket.estimate.value -
                         static_cast<double>(kNumClients)),
                bucket.estimate.error)
          << "window [" << windowed.window.start_ms << ", "
          << windowed.window.end_ms << ") estimate " << bucket.estimate.value
          << " +/- " << bucket.estimate.error;
      any_lost = any_lost || windowed.result.lost_to_faults > 0;
    }
    EXPECT_TRUE(any_lost);  // CI widening actually engaged somewhere
  }
}

TEST(FaultTest, ChaosSeedsAreBitIdenticalAcrossAggregatorShardCounts) {
  // Faults stress exactly the state the shard merge must keep order-free:
  // lost-MID attribution, expired join groups, CI widening. Every chaos
  // seed must produce the same results, stats, and fault counters whether
  // the aggregator runs 1, 2, or 4 join shards, in both pipeline modes.
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunSnapshot oracle =
        RunScenario(EpochPipelineMode::kBarrier, ChaosPlan(seed),
                    /*agg_shards=*/1);
    for (const auto mode : {EpochPipelineMode::kBarrier,
                            EpochPipelineMode::kStreaming}) {
      for (size_t shards : {2u, 4u}) {
        SCOPED_TRACE("mode=" +
                     std::string(mode == EpochPipelineMode::kBarrier
                                     ? "barrier"
                                     : "streaming") +
                     " shards=" + std::to_string(shards));
        const RunSnapshot sharded = RunScenario(mode, ChaosPlan(seed), shards);
        ExpectResultsIdentical(oracle, sharded);
        ASSERT_EQ(oracle.epochs.size(), sharded.epochs.size());
        for (size_t e = 0; e < oracle.epochs.size(); ++e) {
          ExpectEpochStatsEqual(oracle.epochs[e], sharded.epochs[e]);
        }
        EXPECT_EQ(oracle.fault_counters, sharded.fault_counters);
      }
    }
  }
}

// EpochStats fault/recovery fields are per-epoch deltas of the registry
// counters: summed over the run they must reproduce the cumulative values.
TEST(FaultTest, FaultStatsMatchRegistryTotals) {
  for (const auto mode : {EpochPipelineMode::kBarrier,
                          EpochPipelineMode::kStreaming}) {
    SCOPED_TRACE(mode == EpochPipelineMode::kBarrier ? "barrier"
                                                     : "streaming");
    const RunSnapshot run = RunScenario(mode, ChaosPlan(7));
    EpochStats total;
    for (const auto& stats : run.epochs) {
      total.malformed_dropped += stats.malformed_dropped;
      total.fault_shares_dropped += stats.fault_shares_dropped;
      total.fault_shares_corrupted += stats.fault_shares_corrupted;
      total.fault_shares_duplicated += stats.fault_shares_duplicated;
      total.fault_shares_delayed += stats.fault_shares_delayed;
      total.fault_forward_timeouts += stats.fault_forward_timeouts;
      total.fault_proxy_crashes += stats.fault_proxy_crashes;
      total.fault_lost_mids += stats.fault_lost_mids;
      total.recovery_retries += stats.recovery_retries;
      total.recovery_failovers += stats.recovery_failovers;
      total.recovery_late_delivered += stats.recovery_late_delivered;
    }
    EXPECT_EQ(CounterValue(run, "privapprox_fault_shares_dropped_total"),
              total.fault_shares_dropped);
    EXPECT_EQ(CounterValue(run, "privapprox_fault_shares_corrupted_total"),
              total.fault_shares_corrupted);
    EXPECT_EQ(CounterValue(run, "privapprox_fault_shares_duplicated_total"),
              total.fault_shares_duplicated);
    EXPECT_EQ(CounterValue(run, "privapprox_fault_shares_delayed_total"),
              total.fault_shares_delayed);
    EXPECT_EQ(CounterValue(run, "privapprox_fault_forward_timeouts_total"),
              total.fault_forward_timeouts);
    EXPECT_EQ(CounterValue(run, "privapprox_fault_proxy_crashes_total"),
              total.fault_proxy_crashes);
    EXPECT_EQ(CounterValue(run, "privapprox_fault_lost_mids_total"),
              total.fault_lost_mids);
    EXPECT_EQ(CounterValue(run, "privapprox_recovery_retries_total"),
              total.recovery_retries);
    EXPECT_EQ(CounterValue(run, "privapprox_recovery_failovers_total"),
              total.recovery_failovers);
    EXPECT_EQ(CounterValue(run, "privapprox_recovery_late_delivered_total"),
              total.recovery_late_delivered);
  }
}

// ------------------------------------------------------ degradation edges

TEST(FaultTest, AllSharesLostDoesNotDeadlockOrFabricateResults) {
  // drop = 1.0: every share vanishes in transit. The epoch must still
  // complete in both modes (the streaming shard sequence stays gapless even
  // when every batch is empty, so FinishStream has nothing parked) and the
  // system must report no results rather than garbage.
  fault::FaultPlan plan;
  plan.seed = 13;
  plan.drop_probability = 1.0;
  for (const auto mode : {EpochPipelineMode::kBarrier,
                          EpochPipelineMode::kStreaming}) {
    SCOPED_TRACE(mode == EpochPipelineMode::kBarrier ? "barrier"
                                                     : "streaming");
    PrivApproxSystem sys(BaseConfig(mode, plan));
    for (size_t i = 0; i < kNumClients; ++i) {
      auto& db = sys.client(i).database();
      db.CreateTable("vehicle", {"speed"});
      db.GetTable("vehicle").Insert(500, {localdb::Value(kSpeed)});
    }
    core::ExecutionParams params;
    params.sampling_fraction = 1.0;
    params.randomization = {1.0, 0.5};
    sys.SubmitQuery(SpeedQuery(), params);
    const EpochStats stats = sys.RunEpoch(1000);
    sys.AdvanceWatermark(20000);
    sys.Flush();
    EXPECT_EQ(stats.participants, kNumClients);
    EXPECT_EQ(stats.shares_sent, kNumClients * kNumProxies);
    EXPECT_EQ(stats.fault_shares_dropped, kNumClients * kNumProxies);
    EXPECT_EQ(stats.fault_lost_mids, kNumClients);  // each MID counted once
    EXPECT_EQ(stats.shares_forwarded, 0u);
    EXPECT_EQ(stats.shares_consumed, 0u);
    EXPECT_TRUE(sys.results().empty());
    EXPECT_EQ(sys.aggregator().pending_join_groups(), 0u);
  }
}

TEST(FaultTest, RejectsInvalidPlans) {
  {
    fault::FaultPlan plan;
    plan.drop_probability = 0.7;
    plan.corrupt_probability = 0.4;  // fates sum > 1
    EXPECT_THROW(PrivApproxSystem(
                     BaseConfig(EpochPipelineMode::kBarrier, plan)),
                 std::invalid_argument);
  }
  {
    fault::FaultPlan plan;
    plan.timeout_probability = 1.5;
    EXPECT_THROW(PrivApproxSystem(
                     BaseConfig(EpochPipelineMode::kBarrier, plan)),
                 std::invalid_argument);
  }
  {
    fault::FaultPlan plan;
    plan.retry.max_attempts = 0;
    EXPECT_THROW(PrivApproxSystem(
                     BaseConfig(EpochPipelineMode::kBarrier, plan)),
                 std::invalid_argument);
  }
}

// -------------------------------------------------------- multi-query chaos

constexpr double kTemperature = 55.0;  // every client -> bucket 5
constexpr size_t kTempTrueBucket = 5;

core::Query TempQuery() {
  return core::QueryBuilder()
      .WithId(2)
      .WithSql("SELECT temperature FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(5000)
      .WithWindowMs(10000)
      .WithSlideMs(10000)
      .Build();
}

core::ExecutionParams SpeedChaosParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  return params;
}

core::ExecutionParams TempChaosParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.8;
  params.randomization = {0.85, 0.5};
  return params;
}

// Same schedule as RunScenario but the query set comes from config.queries
// and every client carries both columns, so the speed-only, temp-only, and
// joint runs see identical local databases.
RunSnapshot RunMultiChaosScenario(EpochPipelineMode mode,
                                  std::optional<fault::FaultPlan> plan,
                                  bool with_speed, bool with_temp) {
  SystemConfig config = BaseConfig(mode, std::move(plan));
  if (with_speed) {
    config.queries.push_back({SpeedQuery(), SpeedChaosParams()});
  }
  if (with_temp) {
    config.queries.push_back({TempQuery(), TempChaosParams()});
  }
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < kNumClients; ++i) {
    auto& db = sys.client(i).database();
    db.CreateTable("vehicle", {"speed", "temperature"});
    db.GetTable("vehicle").Insert(
        500, {localdb::Value(kSpeed), localdb::Value(kTemperature)});
  }
  RunSnapshot snapshot;
  for (int64_t now = 5000; now <= 20000; now += 5000) {
    for (size_t i = 0; i < kNumClients; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          now - 100,
          {localdb::Value(kSpeed), localdb::Value(kTemperature)});
    }
    snapshot.epochs.push_back(sys.RunEpoch(now));
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  snapshot.results = sys.TakeResults();
  for (const char* name : kFaultCounterNames) {
    snapshot.fault_counters.emplace_back(
        name, sys.metrics_registry().GetCounter(name, "").Value());
  }
  return snapshot;
}

std::vector<aggregator::WindowedResult> ResultsForQuery(
    const RunSnapshot& snapshot, uint64_t qid) {
  std::vector<aggregator::WindowedResult> out;
  for (const auto& windowed : snapshot.results) {
    if (windowed.query_id == qid) {
      out.push_back(windowed);
    }
  }
  return out;
}

void ExpectWindowedResultsIdentical(
    const std::vector<aggregator::WindowedResult>& a,
    const std::vector<aggregator::WindowedResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].window, b[w].window);
    EXPECT_EQ(a[w].result.participants, b[w].result.participants);
    EXPECT_EQ(a[w].result.lost_to_faults, b[w].result.lost_to_faults);
    ASSERT_EQ(a[w].result.buckets.size(), b[w].result.buckets.size());
    for (size_t i = 0; i < a[w].result.buckets.size(); ++i) {
      EXPECT_EQ(a[w].result.buckets[i].estimate.value,
                b[w].result.buckets[i].estimate.value);
      EXPECT_EQ(a[w].result.buckets[i].estimate.error,
                b[w].result.buckets[i].estimate.error);
      EXPECT_EQ(a[w].result.buckets[i].randomized_count,
                b[w].result.buckets[i].randomized_count);
    }
  }
}

TEST(MultiQueryFaultTest, TwoQueryChaosMatchesIsolatedRunsPerQuery) {
  // Fault fates are pure (plan seed, salt, QID, MID, proxy) hashes and
  // proxy crashes are (epoch, proxy) draws, so the chaos a query suffers
  // must not depend on which other queries share the fleet. The joint
  // 2-query run must agree with both pipeline modes AND, per query, be bit
  // identical — estimates, widened errors, lost_to_faults — to the run
  // where that query has the system to itself. This also pins that CI
  // widening is driven by each lane's own losses, never pooled across
  // queries.
  for (const uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunSnapshot joint = RunMultiChaosScenario(
        EpochPipelineMode::kBarrier, ChaosPlan(seed), true, true);
    const RunSnapshot joint_streaming = RunMultiChaosScenario(
        EpochPipelineMode::kStreaming, ChaosPlan(seed), true, true);
    ExpectResultsIdentical(joint, joint_streaming);
    ASSERT_EQ(joint.epochs.size(), joint_streaming.epochs.size());
    for (size_t e = 0; e < joint.epochs.size(); ++e) {
      ExpectEpochStatsEqual(joint.epochs[e], joint_streaming.epochs[e]);
    }
    EXPECT_EQ(joint.fault_counters, joint_streaming.fault_counters);

    const RunSnapshot solo_speed = RunMultiChaosScenario(
        EpochPipelineMode::kBarrier, ChaosPlan(seed), true, false);
    const RunSnapshot solo_temp = RunMultiChaosScenario(
        EpochPipelineMode::kBarrier, ChaosPlan(seed), false, true);
    ExpectWindowedResultsIdentical(ResultsForQuery(joint, 1),
                                   solo_speed.results);
    ExpectWindowedResultsIdentical(ResultsForQuery(joint, 2),
                                   solo_temp.results);

    // Lost MIDs are keyed (QID, MID): the joint ledger is the disjoint
    // union of the solo ledgers.
    EXPECT_EQ(CounterValue(joint, "privapprox_fault_lost_mids_total"),
              CounterValue(solo_speed, "privapprox_fault_lost_mids_total") +
                  CounterValue(solo_temp, "privapprox_fault_lost_mids_total"));

    // Both lanes genuinely lost shares and both stayed honest: the true
    // per-bucket population is covered by each query's own widened CI.
    for (const auto& [qid, bucket_index] :
         std::vector<std::pair<uint64_t, size_t>>{{1, kTrueBucket},
                                                  {2, kTempTrueBucket}}) {
      SCOPED_TRACE("qid=" + std::to_string(qid));
      const auto windows = ResultsForQuery(joint, qid);
      ASSERT_GT(windows.size(), 0u);
      bool any_lost = false;
      for (const auto& windowed : windows) {
        const auto& bucket = windowed.result.buckets[bucket_index];
        EXPECT_LE(std::abs(bucket.estimate.value -
                           static_cast<double>(kNumClients)),
                  bucket.estimate.error)
            << "window [" << windowed.window.start_ms << ", "
            << windowed.window.end_ms << ") estimate "
            << bucket.estimate.value << " +/- " << bucket.estimate.error;
        any_lost = any_lost || windowed.result.lost_to_faults > 0;
      }
      EXPECT_TRUE(any_lost);
    }
  }
}

// ------------------------------------------------------- estimator widening

TEST(FaultTest, EstimatorWidensErrorBySqrtOfIntendedOverEffective) {
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  const core::ErrorEstimator estimator(params, /*population=*/1000, 0.99);
  Histogram counts(4);
  counts.SetCount(0, 40.0);
  counts.SetCount(1, 25.0);
  counts.SetCount(2, 20.0);
  counts.SetCount(3, 15.0);
  const core::QueryResult base = estimator.Estimate(counts, 100);
  const core::QueryResult widened = estimator.Estimate(counts, 100, 25);
  EXPECT_EQ(base.lost_to_faults, 0u);
  EXPECT_EQ(widened.lost_to_faults, 25u);
  const double factor = std::sqrt(125.0 / 100.0);
  ASSERT_EQ(widened.buckets.size(), base.buckets.size());
  for (size_t i = 0; i < base.buckets.size(); ++i) {
    // Point estimates untouched; only the margin scales.
    EXPECT_EQ(widened.buckets[i].estimate.value,
              base.buckets[i].estimate.value);
    EXPECT_DOUBLE_EQ(widened.buckets[i].estimate.error,
                     base.buckets[i].estimate.error * factor);
  }
}

}  // namespace
}  // namespace privapprox::system
