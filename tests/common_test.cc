// Unit tests for the common substrate: RNG, bit vectors, histograms, the
// thread pool, and logging.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "common/thread_pool.h"
#include "common/xor_bytes.h"

namespace privapprox {
namespace {

// ---------------------------------------------------------------- Xoshiro256

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256Test, BernoulliMatchesProbability) {
  Xoshiro256 rng(13);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(p)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Xoshiro256Test, BernoulliEdgeCases) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Xoshiro256Test, NextBoundedIsInRange) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Xoshiro256Test, NextBoundedIsRoughlyUniform) {
  Xoshiro256 rng(23);
  constexpr uint64_t kBuckets = 10;
  std::array<int, kBuckets> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.NextBounded(kBuckets)]++;
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), n / 10.0, n * 0.01);
  }
}

TEST(Xoshiro256Test, NextInRangeInclusive) {
  Xoshiro256 rng(29);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(rng.NextInRange(5, 5), 5);
  EXPECT_EQ(rng.NextInRange(5, 4), 5);  // degenerate range clamps to lo
}

TEST(Xoshiro256Test, GaussianMoments) {
  Xoshiro256 rng(31);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro256Test, ExponentialMean) {
  Xoshiro256 rng(37);
  const double lambda = 2.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(lambda);
  }
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Xoshiro256Test, SplitProducesIndependentStreams) {
  Xoshiro256 parent(41);
  Xoshiro256 child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.Next() == child.Next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(FillRandomBytesTest, FillsAllLengths) {
  Xoshiro256 rng(43);
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 100u}) {
    std::vector<uint8_t> buffer(len, 0);
    FillRandomBytes(rng, buffer);
    if (len >= 16) {
      // Not all zero with overwhelming probability.
      bool any_nonzero = false;
      for (uint8_t b : buffer) {
        any_nonzero |= (b != 0);
      }
      EXPECT_TRUE(any_nonzero);
    }
  }
}

// ----------------------------------------------------------------- BitVector

TEST(BitVectorTest, StartsAllZero) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.PopCount(), 0u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(bv.Get(i));
  }
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bv(12);
  bv.Set(0, true);
  bv.Set(7, true);
  bv.Set(8, true);
  bv.Set(11, true);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(7));
  EXPECT_TRUE(bv.Get(8));
  EXPECT_TRUE(bv.Get(11));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.PopCount(), 4u);
  bv.Set(7, false);
  EXPECT_FALSE(bv.Get(7));
  EXPECT_EQ(bv.PopCount(), 3u);
}

TEST(BitVectorTest, FlipTogglesBit) {
  BitVector bv(5);
  bv.Flip(2);
  EXPECT_TRUE(bv.Get(2));
  bv.Flip(2);
  EXPECT_FALSE(bv.Get(2));
}

TEST(BitVectorTest, OutOfRangeThrows) {
  BitVector bv(8);
  EXPECT_THROW(bv.Get(8), std::out_of_range);
  EXPECT_THROW(bv.Set(8, true), std::out_of_range);
}

TEST(BitVectorTest, XorIsInvolutive) {
  Xoshiro256 rng(47);
  BitVector a(77), b(77);
  for (size_t i = 0; i < 77; ++i) {
    a.Set(i, rng.NextBernoulli(0.5));
    b.Set(i, rng.NextBernoulli(0.5));
  }
  const BitVector original = a;
  a ^= b;
  a ^= b;
  EXPECT_EQ(a, original);
}

TEST(BitVectorTest, XorSizeMismatchThrows) {
  BitVector a(8), b(9);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(BitVectorTest, FromBytesRoundTrip) {
  std::vector<uint8_t> bytes = {0xFF, 0x01};
  const BitVector bv = BitVector::FromBytes(bytes, 9);
  EXPECT_EQ(bv.size(), 9u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(bv.Get(i));
  }
  EXPECT_TRUE(bv.Get(8));
  EXPECT_EQ(bv.PopCount(), 9u);
}

TEST(BitVectorTest, FromBytesMasksTailBits) {
  // Bits beyond num_bits must be cleared so equality is well-defined.
  const BitVector a = BitVector::FromBytes({0xFF}, 4);
  BitVector b(4);
  for (size_t i = 0; i < 4; ++i) {
    b.Set(i, true);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.PopCount(), 4u);
}

TEST(BitVectorTest, FromBytesTooFewBytesThrows) {
  EXPECT_THROW(BitVector::FromBytes({0xFF}, 9), std::invalid_argument);
}

TEST(BitVectorTest, ToStringRendersBits) {
  BitVector bv(4);
  bv.Set(1, true);
  EXPECT_EQ(bv.ToString(), "0100");
}

TEST(BitVectorTest, ClearZeroesEverything) {
  BitVector bv(20);
  bv.Set(3, true);
  bv.Set(19, true);
  bv.Clear();
  EXPECT_EQ(bv.PopCount(), 0u);
}

// ----------------------------------------------------------------- Histogram

TEST(HistogramTest, AddAndTotal) {
  Histogram hist(3);
  hist.Add(0);
  hist.Add(1, 2.5);
  hist.Add(1);
  EXPECT_DOUBLE_EQ(hist.Count(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Count(1), 3.5);
  EXPECT_DOUBLE_EQ(hist.Count(2), 0.0);
  EXPECT_DOUBLE_EQ(hist.Total(), 4.5);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a(2), b(2);
  a.Add(0);
  b.Add(0);
  b.Add(1, 3.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Count(0), 2.0);
  EXPECT_DOUBLE_EQ(a.Count(1), 3.0);
}

TEST(HistogramTest, MergeMismatchThrows) {
  Histogram a(2), b(3);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
}

TEST(HistogramTest, FractionsNormalize) {
  Histogram hist(4);
  hist.Add(0, 1.0);
  hist.Add(2, 3.0);
  const auto fractions = hist.Fractions();
  EXPECT_DOUBLE_EQ(fractions[0], 0.25);
  EXPECT_DOUBLE_EQ(fractions[1], 0.0);
  EXPECT_DOUBLE_EQ(fractions[2], 0.75);
}

TEST(HistogramTest, FractionsOfEmptyAreZero) {
  Histogram hist(3);
  for (double f : hist.Fractions()) {
    EXPECT_DOUBLE_EQ(f, 0.0);
  }
}

TEST(HistogramTest, MeanRelativeErrorSkipsZeroBuckets) {
  Histogram exact(std::vector<double>{100.0, 0.0, 50.0});
  Histogram estimate(std::vector<double>{90.0, 5.0, 55.0});
  // |90-100|/100 = 0.1, bucket 1 skipped, |55-50|/50 = 0.1 -> mean 0.1.
  EXPECT_NEAR(estimate.MeanRelativeError(exact), 0.1, 1e-12);
}

TEST(HistogramTest, OutOfRangeThrows) {
  Histogram hist(2);
  EXPECT_THROW(hist.Add(2), std::out_of_range);
  EXPECT_THROW(hist.Count(2), std::out_of_range);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      touched[i]++;
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pool.ParallelFor(3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      touched[i]++;
    }
  });
  for (const auto& t : touched) {
    EXPECT_EQ(t.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t begin, size_t end) {
                                  visited += static_cast<int>(end - begin);
                                  if (begin == 0) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // Every chunk ran to completion before the rethrow — ParallelFor must not
  // return while tasks still reference the caller's lambda.
  EXPECT_EQ(visited.load(), 100);
  // The pool stays usable after a failed ParallelFor.
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t begin, size_t end) {
    counter += static_cast<int>(end - begin);
  });
  EXPECT_EQ(counter.load(), 10);
}

// ------------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGating) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Just exercise the paths; output goes to stderr.
  LogDebug() << "hidden";
  LogError() << "visible " << 42;
  SetLogLevel(saved);
}

TEST(LoggingTest, FormatLogLineLayout) {
  // "[ssssss.mmm] [LEVEL] message\n": zero-padded seconds, millisecond
  // fraction, level tag, exactly one trailing newline.
  EXPECT_EQ(FormatLogLine(LogLevel::kInfo, "hello", 0),
            "[000000.000] [INFO] hello\n");
  EXPECT_EQ(FormatLogLine(LogLevel::kError, "boom", 12'345'678'901LL),
            "[000012.345] [ERROR] boom\n");
  EXPECT_EQ(FormatLogLine(LogLevel::kWarning, "w", 999'999'999LL),
            "[000000.999] [WARN] w\n");
  EXPECT_EQ(FormatLogLine(LogLevel::kDebug, "", 1'000'000LL),
            "[000000.001] [DEBUG] \n");
  // Negative elapsed (clock origin race) clamps to zero instead of
  // rendering garbage.
  EXPECT_EQ(FormatLogLine(LogLevel::kInfo, "x", -5),
            "[000000.000] [INFO] x\n");
}

// ------------------------------------------------------------ SIMD dispatch

TEST(SimdDispatchTest, IsaNameParseRoundTrip) {
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kSse2,
                              simd::Isa::kAvx2, simd::Isa::kNeon}) {
    const auto parsed = simd::ParseIsaName(simd::IsaName(isa));
    ASSERT_TRUE(parsed.has_value()) << simd::IsaName(isa);
    EXPECT_EQ(*parsed, isa);
  }
  // "scalar" is accepted as an alias for the "off" tier.
  ASSERT_TRUE(simd::ParseIsaName("scalar").has_value());
  EXPECT_EQ(*simd::ParseIsaName("scalar"), simd::Isa::kScalar);
  EXPECT_FALSE(simd::ParseIsaName("avx512").has_value());
  EXPECT_FALSE(simd::ParseIsaName("").has_value());
  EXPECT_FALSE(simd::ParseIsaName(nullptr).has_value());
}

TEST(SimdDispatchTest, ActiveIsaIsAvailableAndStable) {
  const auto isas = simd::AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  for (const simd::Isa isa : isas) {
    EXPECT_TRUE(simd::IsaAvailable(isa)) << simd::IsaName(isa);
  }
  const simd::Isa first = simd::ActiveIsa();
  EXPECT_TRUE(std::find(isas.begin(), isas.end(), first) != isas.end());
  // The decision is made once and cached.
  EXPECT_EQ(simd::ActiveIsa(), first);
}

// ----------------------------------------------------------------- XorBytes

std::vector<uint8_t> PatternBytes(size_t len, uint8_t salt) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>(i * 131 + salt);
  }
  return out;
}

TEST(XorBytesTest, InPlaceMatchesReferenceAcrossLengthsAndAlignments) {
  // Lengths straddle the 64-byte vector threshold, the 16/32-byte vector
  // widths, and odd tails; the offset shifts both operands off natural
  // alignment so the unaligned load/store paths are the ones exercised.
  const std::vector<size_t> lengths = {0,  1,  7,   8,   9,   15,  16,  17,
                                       31, 32, 33,  63,  64,  65,  96,  127,
                                       128, 129, 255, 256, 1000, 4097};
  for (const size_t len : lengths) {
    for (const size_t offset : {0u, 1u, 3u}) {
      std::vector<uint8_t> dst_buf = PatternBytes(len + offset, 5);
      std::vector<uint8_t> src_buf = PatternBytes(len + offset, 91);
      std::vector<uint8_t> expected(len);
      for (size_t i = 0; i < len; ++i) {
        expected[i] =
            static_cast<uint8_t>(dst_buf[offset + i] ^ src_buf[offset + i]);
      }
      std::vector<uint8_t> dispatched = dst_buf;
      XorBytesInPlace(dispatched.data() + offset, src_buf.data() + offset,
                      len);
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                             dispatched.begin() + offset))
          << "dispatched len=" << len << " offset=" << offset;
      for (const simd::Isa isa : simd::AvailableIsas()) {
        std::vector<uint8_t> forced = dst_buf;
        XorBytesInPlaceWith(isa, forced.data() + offset,
                            src_buf.data() + offset, len);
        EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                               forced.begin() + offset))
            << simd::IsaName(isa) << " len=" << len << " offset=" << offset;
      }
    }
  }
}

TEST(XorBytesTest, IntoMatchesReferenceAndSupportsAliasedDst) {
  const std::vector<size_t> lengths = {0, 1, 15, 16, 31, 32, 33,
                                       63, 64, 65, 200, 1024};
  for (const size_t len : lengths) {
    const std::vector<uint8_t> a = PatternBytes(len, 17);
    const std::vector<uint8_t> b = PatternBytes(len, 201);
    std::vector<uint8_t> expected(len);
    for (size_t i = 0; i < len; ++i) {
      expected[i] = static_cast<uint8_t>(a[i] ^ b[i]);
    }
    std::vector<uint8_t> out(len, 0xCC);
    XorBytesInto(out.data(), a.data(), b.data(), len);
    EXPECT_EQ(out, expected) << "dispatched len=" << len;
    // dst == a aliasing is part of the contract (MidJoiner reuses buffers).
    std::vector<uint8_t> aliased = a;
    XorBytesInto(aliased.data(), aliased.data(), b.data(), len);
    EXPECT_EQ(aliased, expected) << "aliased len=" << len;
    for (const simd::Isa isa : simd::AvailableIsas()) {
      std::vector<uint8_t> forced(len, 0xCC);
      XorBytesIntoWith(isa, forced.data(), a.data(), b.data(), len);
      EXPECT_EQ(forced, expected) << simd::IsaName(isa) << " len=" << len;
    }
  }
}

TEST(XorBytesTest, ForcingUnavailableIsaThrows) {
  const auto isas = simd::AvailableIsas();
  for (const simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2,
                              simd::Isa::kNeon}) {
    if (std::find(isas.begin(), isas.end(), isa) != isas.end()) {
      continue;
    }
    uint8_t buf[8] = {0};
    uint8_t src[8] = {0};
    EXPECT_THROW(XorBytesInPlaceWith(isa, buf, src, sizeof(buf)),
                 std::invalid_argument)
        << simd::IsaName(isa);
    EXPECT_THROW(XorBytesIntoWith(isa, buf, buf, src, sizeof(buf)),
                 std::invalid_argument)
        << simd::IsaName(isa);
  }
}

TEST(LoggingTest, ConcurrentWritersDoNotCrash) {
  // LogMessage writes each line with a single fwrite; hammer it from
  // several threads (run under TSan in CI) to pin the no-shared-state
  // claim. Output inspection is not practical here — the interleaving
  // guarantee rests on POSIX stdio per-call locking.
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep the suite's stderr quiet
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        LogDebug() << "writer " << t << " line " << i;  // gated off
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  SetLogLevel(saved);
}

}  // namespace
}  // namespace privapprox
