// Tests for the query model: buckets, answer formats, the builder, the
// signature stand-in, and answer encoding.

#include <gtest/gtest.h>

#include "core/answer.h"
#include "core/query.h"

namespace privapprox::core {
namespace {

TEST(NumericBucketTest, HalfOpenInterval) {
  const NumericBucket bucket{1.0, 2.0};
  EXPECT_FALSE(bucket.Contains(0.99));
  EXPECT_TRUE(bucket.Contains(1.0));
  EXPECT_TRUE(bucket.Contains(1.999));
  EXPECT_FALSE(bucket.Contains(2.0));
}

TEST(MatchBucketTest, ExactMatch) {
  const MatchBucket bucket{"san_francisco", false};
  EXPECT_TRUE(bucket.Contains("san_francisco"));
  EXPECT_FALSE(bucket.Contains("San_Francisco"));
  EXPECT_FALSE(bucket.Contains("san"));
}

TEST(MatchBucketTest, WildcardMatch) {
  const MatchBucket star{"error*", true};
  EXPECT_TRUE(star.Contains("error"));
  EXPECT_TRUE(star.Contains("error: disk full"));
  EXPECT_FALSE(star.Contains("warning"));
  const MatchBucket question{"v?.0", true};
  EXPECT_TRUE(question.Contains("v1.0"));
  EXPECT_TRUE(question.Contains("v2.0"));
  EXPECT_FALSE(question.Contains("v10.0"));
  const MatchBucket mixed{"*taxi*ride*", true};
  EXPECT_TRUE(mixed.Contains("nyc taxi and ride data"));
  EXPECT_FALSE(mixed.Contains("ride taxi"));  // order matters
}

TEST(AnswerFormatTest, UniformNumericCoversRange) {
  const AnswerFormat format = AnswerFormat::UniformNumeric(0.0, 10.0, 10, true);
  EXPECT_EQ(format.num_buckets(), 11u);
  EXPECT_EQ(format.BucketOf(0.0).value(), 0u);
  EXPECT_EQ(format.BucketOf(9.99).value(), 9u);
  EXPECT_EQ(format.BucketOf(10.0).value(), 10u);   // overflow bucket
  EXPECT_EQ(format.BucketOf(1234.5).value(), 10u);
  EXPECT_FALSE(format.BucketOf(-0.1).has_value());
}

TEST(AnswerFormatTest, WithoutOverflowRejectsLargeValues) {
  const AnswerFormat format = AnswerFormat::UniformNumeric(0.0, 3.0, 6);
  EXPECT_EQ(format.num_buckets(), 6u);
  EXPECT_EQ(format.BucketOf(2.6).value(), 5u);
  EXPECT_FALSE(format.BucketOf(3.0).has_value());
}

TEST(AnswerFormatTest, BadRangeThrows) {
  EXPECT_THROW(AnswerFormat::UniformNumeric(0.0, 0.0, 5),
               std::invalid_argument);
  EXPECT_THROW(AnswerFormat::UniformNumeric(0.0, 1.0, 0),
               std::invalid_argument);
}

TEST(AnswerFormatTest, StringBuckets) {
  const AnswerFormat format(std::vector<Bucket>{
      MatchBucket{"manhattan", false}, MatchBucket{"brooklyn", false},
      MatchBucket{"*", true}});
  EXPECT_EQ(format.BucketOf(std::string("manhattan")).value(), 0u);
  EXPECT_EQ(format.BucketOf(std::string("brooklyn")).value(), 1u);
  // First matching bucket wins; the catch-all takes the rest.
  EXPECT_EQ(format.BucketOf(std::string("queens")).value(), 2u);
}

TEST(AnswerFormatTest, BucketLabels) {
  const AnswerFormat format = AnswerFormat::UniformNumeric(0.0, 2.0, 2, true);
  EXPECT_EQ(format.BucketLabel(0), "[0, 1)");
  EXPECT_EQ(format.BucketLabel(2), "[2, +inf)");
  EXPECT_THROW(format.BucketLabel(3), std::out_of_range);
}

TEST(QueryBuilderTest, BuildsSignedQuery) {
  const Query query = QueryBuilder()
                          .WithId(7)
                          .WithAnalyst(99)
                          .WithSql("SELECT speed FROM vehicle")
                          .WithAnswerFormat(
                              AnswerFormat::UniformNumeric(0, 100, 10, true))
                          .WithFrequencyMs(1000)
                          .WithWindowMs(600000)
                          .WithSlideMs(60000)
                          .Build();
  EXPECT_EQ(query.query_id, 7u);
  EXPECT_TRUE(query.VerifySignature());
}

TEST(QueryBuilderTest, TamperedQueryFailsVerification) {
  Query query = QueryBuilder()
                    .WithId(7)
                    .WithSql("SELECT speed FROM vehicle")
                    .WithAnswerFormat(AnswerFormat::UniformNumeric(0, 10, 5))
                    .Build();
  query.sql = "SELECT salary FROM employees";
  EXPECT_FALSE(query.VerifySignature());
}

TEST(QueryBuilderTest, ValidationErrors) {
  const AnswerFormat format = AnswerFormat::UniformNumeric(0, 10, 5);
  EXPECT_THROW(QueryBuilder().WithAnswerFormat(format).Build(),
               std::invalid_argument);  // empty SQL
  EXPECT_THROW(QueryBuilder().WithSql("SELECT a FROM t").Build(),
               std::invalid_argument);  // no buckets
  EXPECT_THROW(QueryBuilder()
                   .WithSql("SELECT a FROM t")
                   .WithAnswerFormat(format)
                   .WithWindowMs(1000)
                   .WithSlideMs(2000)
                   .Build(),
               std::invalid_argument);  // slide > window
  EXPECT_THROW(QueryBuilder()
                   .WithSql("SELECT a FROM t")
                   .WithAnswerFormat(format)
                   .WithFrequencyMs(0)
                   .Build(),
               std::invalid_argument);  // non-positive period
}

TEST(QueryBuilderTest, RejectsQueryIdZero) {
  // QID 0 is reserved: the multi-query runtime keys lanes, budget-ledger
  // entries, and fault draws by QID and uses 0 as the "no query" sentinel.
  const AnswerFormat format = AnswerFormat::UniformNumeric(0, 10, 5);
  EXPECT_THROW(QueryBuilder()
                   .WithId(0)
                   .WithSql("SELECT a FROM t")
                   .WithAnswerFormat(format)
                   .Build(),
               std::invalid_argument);
}

TEST(EncodeAnswerTest, OneHotEncoding) {
  const AnswerFormat format = AnswerFormat::UniformNumeric(0, 10, 10, true);
  const BitVector answer = EncodeAnswer(format, 1.5);
  EXPECT_EQ(answer.size(), 11u);
  EXPECT_EQ(answer.PopCount(), 1u);
  EXPECT_TRUE(answer.Get(1));
}

TEST(EncodeAnswerTest, PaperSpeedExample) {
  // §2.2: 12 speed buckets; a vehicle at 15 mph answers '1' for the third
  // bucket ('11~20') and '0' for all others. Buckets: [0,1) ~ '0',
  // [1,11) ~ '1~10', [11,21) ~ '11~20', ...
  std::vector<Bucket> buckets;
  buckets.push_back(NumericBucket{0, 1});
  for (int lo = 1; lo <= 91; lo += 10) {
    buckets.push_back(NumericBucket{static_cast<double>(lo),
                                    static_cast<double>(lo + 10)});
  }
  buckets.push_back(
      NumericBucket{101, std::numeric_limits<double>::infinity()});
  const AnswerFormat format((std::vector<Bucket>(buckets)));
  EXPECT_EQ(format.num_buckets(), 12u);
  const BitVector answer = EncodeAnswer(format, 15.0);
  EXPECT_TRUE(answer.Get(2));
  EXPECT_EQ(answer.PopCount(), 1u);
}

TEST(EncodeAnswerTest, OutOfRangeValueGivesAllZero) {
  const AnswerFormat format = AnswerFormat::UniformNumeric(0, 10, 10);
  EXPECT_EQ(EncodeAnswer(format, -5.0).PopCount(), 0u);
  EXPECT_EQ(EncodeAnswer(format, 10.0).PopCount(), 0u);
}

TEST(EncodeAnswerTest, StringEncoding) {
  const AnswerFormat format(std::vector<Bucket>{MatchBucket{"a", false},
                                                MatchBucket{"b", false}});
  EXPECT_TRUE(EncodeAnswer(format, std::string("b")).Get(1));
  EXPECT_EQ(EncodeAnswer(format, std::string("c")).PopCount(), 0u);
}

TEST(AnswerAccumulatorTest, CountsPerBucket) {
  AnswerAccumulator acc(3);
  BitVector a(3), b(3);
  a.Set(0, true);
  b.Set(0, true);
  b.Set(2, true);  // randomized answers may have several bits set
  acc.Add(a);
  acc.Add(b);
  EXPECT_EQ(acc.num_answers(), 2u);
  EXPECT_DOUBLE_EQ(acc.histogram().Count(0), 2.0);
  EXPECT_DOUBLE_EQ(acc.histogram().Count(1), 0.0);
  EXPECT_DOUBLE_EQ(acc.histogram().Count(2), 1.0);
}

TEST(AnswerAccumulatorTest, WidthMismatchThrows) {
  AnswerAccumulator acc(3);
  EXPECT_THROW(acc.Add(BitVector(4)), std::invalid_argument);
}

TEST(AnswerAccumulatorTest, MergeCombines) {
  AnswerAccumulator a(2), b(2);
  BitVector yes(2);
  yes.Set(0, true);
  a.Add(yes);
  b.Add(yes);
  b.Add(BitVector(2));
  a.Merge(b);
  EXPECT_EQ(a.num_answers(), 3u);
  EXPECT_DOUBLE_EQ(a.histogram().Count(0), 2.0);
}

}  // namespace
}  // namespace privapprox::core
