// Tests for the comparator baselines: RAPPOR (Fig 5c) and the SplitX
// latency model (Fig 6).

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/rappor.h"
#include "baseline/splitx.h"
#include "core/privacy.h"

namespace privapprox::baseline {
namespace {

TEST(RapporTest, ValidatesParameters) {
  EXPECT_THROW(Rappor(0.0), std::invalid_argument);
  EXPECT_THROW(Rappor(1.0), std::invalid_argument);
  EXPECT_THROW(Rappor(0.5, 0), std::invalid_argument);
}

TEST(RapporTest, PermanentRandomizationRates) {
  // Bit reported true with prob f/2 + (1-f) for truthful 1, f/2 for 0.
  Xoshiro256 rng(1);
  const Rappor rappor(0.4);
  BitVector ones(1), zeros(1);
  ones.Set(0, true);
  int one_kept = 0, zero_flipped = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    one_kept += rappor.PermanentRandomize(ones, rng).Get(0) ? 1 : 0;
    zero_flipped += rappor.PermanentRandomize(zeros, rng).Get(0) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(one_kept) / n, 0.2 + 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(zero_flipped) / n, 0.2, 0.01);
}

TEST(RapporTest, DebiasRecoversTruth) {
  Xoshiro256 rng(2);
  const Rappor rappor(0.5);
  const size_t n = 50000, truthful = 30000;
  double randomized_count = 0;
  BitVector yes(1), no(1);
  yes.Set(0, true);
  for (size_t i = 0; i < n; ++i) {
    randomized_count +=
        rappor.PermanentRandomize(i < truthful ? yes : no, rng).Get(0) ? 1 : 0;
  }
  EXPECT_NEAR(rappor.DebiasCount(randomized_count, n), 30000.0, 600.0);
}

TEST(RapporTest, EpsilonOneTimeFormula) {
  const Rappor rappor(0.5, 1);
  EXPECT_NEAR(rappor.EpsilonOneTime(), 2.0 * std::log(0.75 / 0.25), 1e-12);
  const Rappor two_hashes(0.5, 2);
  EXPECT_NEAR(two_hashes.EpsilonOneTime(), 2.0 * rappor.EpsilonOneTime(),
              1e-12);
}

TEST(RapporTest, MappingToPrivApproxMatchesPaper) {
  // §6 #VIII: p = 1 - f, q = 0.5 gives the same randomized response.
  const Rappor rappor(0.3);
  const core::RandomizationParams params = rappor.ToPrivApproxParams();
  EXPECT_NEAR(params.p, 0.7, 1e-12);
  EXPECT_NEAR(params.q, 0.5, 1e-12);
}

TEST(RapporTest, PrivApproxWithSamplingBeatsRappor) {
  // The Fig 5c claim: for the mapped parameters, PrivApprox's amplified
  // epsilon is strictly below RAPPOR's for every s < 1 and equal at s = 1.
  const Rappor rappor(0.5);
  const double eps_rappor = core::EpsilonDp(rappor.ToPrivApproxParams());
  for (double s : {0.1, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    EXPECT_LT(core::AmplifyBySampling(eps_rappor, s), eps_rappor);
  }
  EXPECT_NEAR(core::AmplifyBySampling(eps_rappor, 1.0), eps_rappor, 1e-12);
}

// -------------------------------------------------------------------- SplitX

TEST(SplitXTest, LatencyGrowsLinearlyInClients) {
  const SplitXModel model;
  const double at_1e4 = model.Estimate(10000).Total();
  const double at_1e6 = model.Estimate(1000000).Total();
  EXPECT_GT(at_1e6, at_1e4);
  // Asymptotically linear: 100x clients ~ <=100x latency.
  EXPECT_LT(at_1e6, 100.0 * at_1e4);
}

TEST(SplitXTest, ReproducesPaperReferencePoint) {
  // Fig 6: at 10^6 clients SplitX ~ 40.27 s, PrivApprox ~ 6.21 s (6.48x).
  const SplitXModel splitx;
  const PrivApproxProxyModel privapprox;
  const double splitx_sec = splitx.Estimate(1000000).Total() / 1000.0;
  const double privapprox_sec = privapprox.EstimateMs(1000000) / 1000.0;
  EXPECT_NEAR(splitx_sec, 40.27, 4.0);
  EXPECT_NEAR(privapprox_sec, 6.21, 0.7);
  const double speedup = splitx_sec / privapprox_sec;
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 8.0);
}

TEST(SplitXTest, SynchronizationStagesDominateAtScale) {
  // PrivApprox's advantage is exactly the non-transmission stages.
  const SplitXModel model;
  const auto latency = model.Estimate(10000000);
  EXPECT_GT(latency.computation_ms + latency.shuffling_ms,
            latency.transmission_ms);
}

TEST(SplitXTest, FixedCostsDominateAtSmallScale) {
  const SplitXModel model;
  const auto tiny = model.Estimate(100);
  // At 100 clients the per-record costs are negligible vs fixed costs.
  EXPECT_GT(tiny.Total(), 200.0);
  EXPECT_LT(tiny.Total(), 400.0);
}

TEST(SplitXTest, PrivApproxAlwaysFaster) {
  const SplitXModel splitx;
  const PrivApproxProxyModel privapprox;
  for (uint64_t clients = 100; clients <= 100000000; clients *= 10) {
    EXPECT_LT(privapprox.EstimateMs(clients),
              splitx.Estimate(clients).Total())
        << "clients=" << clients;
  }
}

}  // namespace
}  // namespace privapprox::baseline
