// The PR's acceptance criterion: a 2-proxy, 1-aggregator deployment over
// real loopback TCP sockets produces bit-identical query results to the
// in-process run — including per-query under the multi-query runtime.
//
// The daemons run as in-process objects (each TcpBusServer owns its epoll
// thread), but every byte between fleet, proxies, and aggregator crosses a
// real socket: shares are produced over the wire into proxy lane topics,
// the aggregator joins by polling those topics through TcpBusClients, and
// results come back serialized. The reference run is a plain
// PrivApproxSystem (streaming pipeline, worker pool) over the same seed and
// databases; comparison is on result_wire bytes, where every double is its
// raw IEEE-754 bit pattern.

// Durability: a non-empty PRIVAPPROX_TEST_DURABILITY environment variable
// (an fsync policy name — CI uses "always") reruns every deployment in this
// file with durable daemons on scratch data dirs, proving the spill layer
// changes no result bytes. The restart tests at the bottom go further: they
// destroy and recreate one daemon mid-epoch — same port, same data dir —
// and require the recovered deployment to converge to the uninterrupted
// run's exact bytes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/query.h"
#include "deploy/aggregator_daemon.h"
#include "deploy/fleet_driver.h"
#include "deploy/proxy_daemon.h"
#include "deploy/result_wire.h"
#include "localdb/database.h"
#include "storage/partition_log.h"
#include "system/system.h"

namespace privapprox::deploy {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    std::random_device rd;
    path_ = fs::temp_directory_path() /
            ("privapprox_e2e_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + "_" + std::to_string(rd()));
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// The CI durability leg: PRIVAPPROX_TEST_DURABILITY=<fsync policy> makes
// every deployment in this file durable. Empty/unset = memory-only
// (the default tier-1 run).
storage::FsyncPolicy EnvFsyncPolicy(bool& enabled) {
  const char* env = std::getenv("PRIVAPPROX_TEST_DURABILITY");
  enabled = env != nullptr && *env != '\0';
  return enabled ? storage::ParseFsyncPolicy(env)
                 : storage::FsyncPolicy::kNever;
}

// Which daemon (if any) a deployment kill-and-restarts, and when.
struct RestartSpec {
  enum Target { kNone, kProxy0, kAggregator };
  Target target = kNone;
  size_t epoch = 1;  // restart fires after this epoch's shares are produced
};

constexpr size_t kClients = 120;
constexpr size_t kProxies = 2;
constexpr uint64_t kSeed = 42;
constexpr size_t kEpochs = 3;

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(1000)
      .WithSlideMs(1000)
      .Build();
}

core::Query FareQuery() {
  return core::QueryBuilder()
      .WithId(2)
      .WithSql("SELECT fare FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 50, 5, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(2000)
      .WithSlideMs(2000)
      .Build();
}

core::ExecutionParams RandomizedParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.9;
  params.randomization = {0.85, 0.5};
  return params;
}

void FillDatabase(localdb::Database& db, size_t client_index) {
  db.CreateTable("vehicle", {"speed", "fare"});
  db.GetTable("vehicle").Insert(
      500, {localdb::Value(static_cast<double>((client_index * 7) % 100)),
            localdb::Value(static_cast<double>((client_index * 3) % 50))});
}

// One full socket deployment: 2 proxy daemons + 1 aggregator daemon on
// ephemeral loopback ports, driven by a FleetDriver. Returns the results
// stream after `kEpochs` epochs and a flush.
//
// `force_durable` makes the deployment durable even without the env var
// (the restart tests need the disk state). With a restart spec, the chosen
// daemon is destroyed and recreated — same port, same data dir — from the
// after-produce seam of the spec's epoch, exactly where the chaos CI job
// lands its kill -9.
std::vector<aggregator::WindowedResult> RunSocketDeployment(
    const std::vector<core::Query>& queries,
    RestartSpec restart = RestartSpec{}, bool force_durable = false) {
  bool durable_env = false;
  const storage::FsyncPolicy env_policy = EnvFsyncPolicy(durable_env);
  const bool durable = durable_env || force_durable;
  TempDir data_root;
  storage::PartitionLogOptions log_options;
  log_options.fsync =
      durable_env ? env_policy : storage::FsyncPolicy::kAlways;

  std::vector<std::unique_ptr<ProxyDaemon>> proxyds;
  std::vector<ProxyDaemonConfig> proxy_configs;
  std::vector<Endpoint> proxy_endpoints;
  for (size_t j = 0; j < kProxies; ++j) {
    ProxyDaemonConfig config;
    config.proxy_index = j;
    if (durable) {
      config.data_dir =
          (data_root.path() / ("proxyd" + std::to_string(j))).string();
      config.log = log_options;
    }
    proxyds.push_back(std::make_unique<ProxyDaemon>(config));
    proxyds.back()->Start();
    // Pin the bound port so a restarted daemon comes back at the same
    // endpoint the fleet and aggregator dialed.
    config.port = proxyds.back()->port();
    proxy_configs.push_back(config);
    proxy_endpoints.push_back(Endpoint{"127.0.0.1", proxyds.back()->port()});
  }
  AggregatorDaemonConfig agg_config;
  agg_config.proxies = proxy_endpoints;
  agg_config.population = kClients;
  if (durable) {
    agg_config.data_dir = (data_root.path() / "aggregatord").string();
    agg_config.log = log_options;
  }
  auto aggregatord = std::make_unique<AggregatorDaemon>(agg_config);
  aggregatord->Start();
  agg_config.port = aggregatord->port();

  FleetDriverConfig fleet_config;
  fleet_config.num_clients = kClients;
  fleet_config.seed = kSeed;
  fleet_config.proxies = proxy_endpoints;
  fleet_config.aggregator = Endpoint{"127.0.0.1", aggregatord->port()};

  size_t current_epoch = 0;
  bool restarted = false;
  if (restart.target != RestartSpec::kNone) {
    // The restarted daemon costs at most one failed control RPC per
    // poisoned connection; retries re-dial.
    fleet_config.control_retries = 3;
    fleet_config.after_produce_hook = [&] {
      if (restarted || current_epoch != restart.epoch) {
        return;
      }
      restarted = true;
      if (restart.target == RestartSpec::kProxy0) {
        proxyds[0].reset();
        proxyds[0] = std::make_unique<ProxyDaemon>(proxy_configs[0]);
        proxyds[0]->Start();
        ASSERT_EQ(proxyds[0]->port(), proxy_configs[0].port);
      } else {
        aggregatord.reset();
        aggregatord = std::make_unique<AggregatorDaemon>(agg_config);
        aggregatord->Start();
        ASSERT_EQ(aggregatord->port(), agg_config.port);
      }
    };
  }

  FleetDriver fleet(fleet_config);
  for (size_t i = 0; i < fleet.num_clients(); ++i) {
    FillDatabase(fleet.client(i).database(), i);
  }
  for (const core::Query& query : queries) {
    fleet.SubmitQuery(query, RandomizedParams());
  }
  for (size_t e = 0; e < kEpochs; ++e) {
    current_epoch = e;
    const FleetEpochStats stats =
        fleet.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
    if (restart.target == RestartSpec::kNone) {
      // Conservation over the wire: everything sent was forwarded and
      // consumed (loopback TCP loses nothing). A restarted aggregator
      // legitimately re-consumes, so the per-epoch counts don't apply.
      EXPECT_EQ(stats.shares_forwarded, stats.shares_sent);
      EXPECT_EQ(stats.shares_consumed, stats.shares_sent);
    }
  }
  if (restart.target != RestartSpec::kNone) {
    EXPECT_TRUE(restarted) << "restart never fired";
  }
  fleet.Flush();
  return fleet.TakeResults();
}

// The in-process reference over identical inputs (streaming pipeline and
// thread pool — the default mode, pinned bit-identical to the barrier path
// by parallel_epoch_test).
std::vector<aggregator::WindowedResult> RunInProcessReference(
    const std::vector<core::Query>& queries) {
  system::SystemConfig config;
  config.num_clients = kClients;
  config.num_proxies = kProxies;
  config.seed = kSeed;
  system::PrivApproxSystem sys(config);
  for (size_t i = 0; i < kClients; ++i) {
    FillDatabase(sys.client(i).database(), i);
  }
  for (const core::Query& query : queries) {
    sys.SubmitQuery(query, RandomizedParams());
  }
  for (size_t e = 0; e < kEpochs; ++e) {
    sys.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
  }
  sys.Flush();
  return sys.TakeResults();
}

TEST(SocketDeploymentTest, SingleQueryMatchesInProcessBitForBit) {
  const std::vector<core::Query> queries = {SpeedQuery()};
  const std::vector<uint8_t> socket_wire =
      SerializeResults(RunSocketDeployment(queries));
  const std::vector<uint8_t> inproc_wire =
      SerializeResults(RunInProcessReference(queries));
  ASSERT_FALSE(socket_wire.empty());
  EXPECT_EQ(socket_wire, inproc_wire);
}

TEST(SocketDeploymentTest, MultiQueryMatchesInProcessPerQuery) {
  const std::vector<core::Query> queries = {SpeedQuery(), FareQuery()};
  const std::vector<aggregator::WindowedResult> socket_results =
      RunSocketDeployment(queries);
  const std::vector<aggregator::WindowedResult> inproc_results =
      RunInProcessReference(queries);

  // Whole-stream equality...
  EXPECT_EQ(SerializeResults(socket_results),
            SerializeResults(inproc_results));

  // ...and per-query bit-identity under the multi-query runtime: each QID's
  // result subsequence matches independently.
  for (const uint64_t qid : {uint64_t{1}, uint64_t{2}}) {
    std::vector<aggregator::WindowedResult> socket_lane, inproc_lane;
    for (const auto& result : socket_results) {
      if (result.query_id == qid) {
        socket_lane.push_back(result);
      }
    }
    for (const auto& result : inproc_results) {
      if (result.query_id == qid) {
        inproc_lane.push_back(result);
      }
    }
    ASSERT_FALSE(socket_lane.empty()) << "query " << qid;
    EXPECT_EQ(SerializeResults(socket_lane), SerializeResults(inproc_lane))
        << "query " << qid;
  }
}

TEST(SocketDeploymentTest, RerunningTheSocketDeploymentIsDeterministic) {
  const std::vector<core::Query> queries = {SpeedQuery()};
  EXPECT_EQ(SerializeResults(RunSocketDeployment(queries)),
            SerializeResults(RunSocketDeployment(queries)));
}

// ---------------------------------------------------------- crash recovery

// The durable acceptance gate, in-process edition (the chaos CI job does
// the same with kill -9 across real processes): a proxy daemon torn down
// and recovered from disk mid-epoch yields the exact bytes of an
// uninterrupted durable run — which the DurableResultsMatchMemoryOnly gate
// already pins to the memory-only bytes.
TEST(SocketRestartTest, ProxyRestartMidEpochConvergesBitForBit) {
  const std::vector<core::Query> queries = {SpeedQuery(), FareQuery()};
  const std::vector<uint8_t> reference =
      SerializeResults(RunSocketDeployment(queries, RestartSpec{},
                                           /*force_durable=*/true));
  RestartSpec restart;
  restart.target = RestartSpec::kProxy0;
  restart.epoch = 1;
  const std::vector<uint8_t> interrupted = SerializeResults(
      RunSocketDeployment(queries, restart, /*force_durable=*/true));
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(interrupted, reference);
}

// Same for the aggregator: its query journal re-registers the lanes and its
// consumers re-drain the durable proxy streams from offset zero; windows
// only fire at Flush, so the interrupted run converges.
TEST(SocketRestartTest, AggregatorRestartMidEpochConvergesBitForBit) {
  const std::vector<core::Query> queries = {SpeedQuery()};
  const std::vector<uint8_t> reference =
      SerializeResults(RunSocketDeployment(queries, RestartSpec{},
                                           /*force_durable=*/true));
  RestartSpec restart;
  restart.target = RestartSpec::kAggregator;
  restart.epoch = 1;
  const std::vector<uint8_t> interrupted = SerializeResults(
      RunSocketDeployment(queries, restart, /*force_durable=*/true));
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(interrupted, reference);
}

// A durable socket deployment with no interruption produces the same bytes
// as the memory-only one — the spill layer is invisible to results.
TEST(SocketRestartTest, DurableDeploymentMatchesMemoryOnly) {
  const std::vector<core::Query> queries = {SpeedQuery()};
  EXPECT_EQ(SerializeResults(RunSocketDeployment(queries, RestartSpec{},
                                                 /*force_durable=*/true)),
            SerializeResults(RunInProcessReference(queries)));
}

}  // namespace
}  // namespace privapprox::deploy
