// The PR's acceptance criterion: a 2-proxy, 1-aggregator deployment over
// real loopback TCP sockets produces bit-identical query results to the
// in-process run — including per-query under the multi-query runtime.
//
// The daemons run as in-process objects (each TcpBusServer owns its epoll
// thread), but every byte between fleet, proxies, and aggregator crosses a
// real socket: shares are produced over the wire into proxy lane topics,
// the aggregator joins by polling those topics through TcpBusClients, and
// results come back serialized. The reference run is a plain
// PrivApproxSystem (streaming pipeline, worker pool) over the same seed and
// databases; comparison is on result_wire bytes, where every double is its
// raw IEEE-754 bit pattern.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/query.h"
#include "deploy/aggregator_daemon.h"
#include "deploy/fleet_driver.h"
#include "deploy/proxy_daemon.h"
#include "deploy/result_wire.h"
#include "localdb/database.h"
#include "system/system.h"

namespace privapprox::deploy {
namespace {

constexpr size_t kClients = 120;
constexpr size_t kProxies = 2;
constexpr uint64_t kSeed = 42;
constexpr size_t kEpochs = 3;

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(1000)
      .WithSlideMs(1000)
      .Build();
}

core::Query FareQuery() {
  return core::QueryBuilder()
      .WithId(2)
      .WithSql("SELECT fare FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 50, 5, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(2000)
      .WithSlideMs(2000)
      .Build();
}

core::ExecutionParams RandomizedParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.9;
  params.randomization = {0.85, 0.5};
  return params;
}

void FillDatabase(localdb::Database& db, size_t client_index) {
  db.CreateTable("vehicle", {"speed", "fare"});
  db.GetTable("vehicle").Insert(
      500, {localdb::Value(static_cast<double>((client_index * 7) % 100)),
            localdb::Value(static_cast<double>((client_index * 3) % 50))});
}

// One full socket deployment: 2 proxy daemons + 1 aggregator daemon on
// ephemeral loopback ports, driven by a FleetDriver. Returns the results
// stream after `kEpochs` epochs and a flush.
std::vector<aggregator::WindowedResult> RunSocketDeployment(
    const std::vector<core::Query>& queries) {
  std::vector<std::unique_ptr<ProxyDaemon>> proxyds;
  std::vector<Endpoint> proxy_endpoints;
  for (size_t j = 0; j < kProxies; ++j) {
    ProxyDaemonConfig config;
    config.proxy_index = j;
    proxyds.push_back(std::make_unique<ProxyDaemon>(config));
    proxyds.back()->Start();
    proxy_endpoints.push_back(Endpoint{"127.0.0.1", proxyds.back()->port()});
  }
  AggregatorDaemonConfig agg_config;
  agg_config.proxies = proxy_endpoints;
  agg_config.population = kClients;
  AggregatorDaemon aggregatord(agg_config);
  aggregatord.Start();

  FleetDriverConfig fleet_config;
  fleet_config.num_clients = kClients;
  fleet_config.seed = kSeed;
  fleet_config.proxies = proxy_endpoints;
  fleet_config.aggregator = Endpoint{"127.0.0.1", aggregatord.port()};
  FleetDriver fleet(fleet_config);
  for (size_t i = 0; i < fleet.num_clients(); ++i) {
    FillDatabase(fleet.client(i).database(), i);
  }
  for (const core::Query& query : queries) {
    fleet.SubmitQuery(query, RandomizedParams());
  }
  for (size_t e = 0; e < kEpochs; ++e) {
    const FleetEpochStats stats =
        fleet.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
    // Conservation over the wire: everything sent was forwarded and
    // consumed (loopback TCP loses nothing).
    EXPECT_EQ(stats.shares_forwarded, stats.shares_sent);
    EXPECT_EQ(stats.shares_consumed, stats.shares_sent);
  }
  fleet.Flush();
  return fleet.TakeResults();
}

// The in-process reference over identical inputs (streaming pipeline and
// thread pool — the default mode, pinned bit-identical to the barrier path
// by parallel_epoch_test).
std::vector<aggregator::WindowedResult> RunInProcessReference(
    const std::vector<core::Query>& queries) {
  system::SystemConfig config;
  config.num_clients = kClients;
  config.num_proxies = kProxies;
  config.seed = kSeed;
  system::PrivApproxSystem sys(config);
  for (size_t i = 0; i < kClients; ++i) {
    FillDatabase(sys.client(i).database(), i);
  }
  for (const core::Query& query : queries) {
    sys.SubmitQuery(query, RandomizedParams());
  }
  for (size_t e = 0; e < kEpochs; ++e) {
    sys.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
  }
  sys.Flush();
  return sys.TakeResults();
}

TEST(SocketDeploymentTest, SingleQueryMatchesInProcessBitForBit) {
  const std::vector<core::Query> queries = {SpeedQuery()};
  const std::vector<uint8_t> socket_wire =
      SerializeResults(RunSocketDeployment(queries));
  const std::vector<uint8_t> inproc_wire =
      SerializeResults(RunInProcessReference(queries));
  ASSERT_FALSE(socket_wire.empty());
  EXPECT_EQ(socket_wire, inproc_wire);
}

TEST(SocketDeploymentTest, MultiQueryMatchesInProcessPerQuery) {
  const std::vector<core::Query> queries = {SpeedQuery(), FareQuery()};
  const std::vector<aggregator::WindowedResult> socket_results =
      RunSocketDeployment(queries);
  const std::vector<aggregator::WindowedResult> inproc_results =
      RunInProcessReference(queries);

  // Whole-stream equality...
  EXPECT_EQ(SerializeResults(socket_results),
            SerializeResults(inproc_results));

  // ...and per-query bit-identity under the multi-query runtime: each QID's
  // result subsequence matches independently.
  for (const uint64_t qid : {uint64_t{1}, uint64_t{2}}) {
    std::vector<aggregator::WindowedResult> socket_lane, inproc_lane;
    for (const auto& result : socket_results) {
      if (result.query_id == qid) {
        socket_lane.push_back(result);
      }
    }
    for (const auto& result : inproc_results) {
      if (result.query_id == qid) {
        inproc_lane.push_back(result);
      }
    }
    ASSERT_FALSE(socket_lane.empty()) << "query " << qid;
    EXPECT_EQ(SerializeResults(socket_lane), SerializeResults(inproc_lane))
        << "query " << qid;
  }
}

TEST(SocketDeploymentTest, RerunningTheSocketDeploymentIsDeterministic) {
  const std::vector<core::Query> queries = {SpeedQuery()};
  EXPECT_EQ(SerializeResults(RunSocketDeployment(queries)),
            SerializeResults(RunSocketDeployment(queries)));
}

}  // namespace
}  // namespace privapprox::deploy
