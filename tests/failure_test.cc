// Failure-injection tests: lost shares, duplicated records, out-of-order
// delivery, proxy outage, and a crash/recovery cycle of the durable
// historical store — the system must degrade gracefully (fewer answers,
// wider error bars) and never produce corrupt results.

#include <gtest/gtest.h>

#include <filesystem>

#include "aggregator/aggregator.h"
#include "client/client.h"
#include "engine/watermark.h"
#include "proxy/proxy.h"
#include "system/system.h"

#include <unistd.h>

namespace privapprox {
namespace {

core::Query MakeQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(10000)
      .WithSlideMs(10000)
      .Build();
}

core::ExecutionParams ExactParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 1.0;
  params.randomization = {1.0, 0.5};
  return params;
}

client::Client MakeClient(uint64_t id, double speed) {
  client::Client c(client::ClientConfig{id, 2, 123});
  c.database().CreateTable("vehicle", {"speed"})
      .Insert(500, {localdb::Value(speed)});
  return c;
}

struct Harness {
  explicit Harness(size_t population)
      : query(MakeQuery()),
        proxy0(proxy::ProxyConfig{0, 2}, broker),
        proxy1(proxy::ProxyConfig{1, 2}, broker) {
    aggregator::AggregatorConfig config;
    config.num_proxies = 2;
    config.population = population;
    agg = std::make_unique<aggregator::Aggregator>(
        config, query, ExactParams(), broker,
        [this](const aggregator::WindowedResult& r) {
          results.push_back(r);
        });
  }

  broker::Broker broker;
  core::Query query;
  proxy::Proxy proxy0;
  proxy::Proxy proxy1;
  std::unique_ptr<aggregator::Aggregator> agg;
  std::vector<aggregator::WindowedResult> results;
};

// ----------------------------------------------------------- share loss

TEST(FailureTest, RandomShareLossDegradesGracefully) {
  // 20% of shares to proxy 1 are lost in transit. Those messages never
  // join; the rest produce an exact result over the survivors.
  const size_t population = 500;
  Harness harness(population);
  Xoshiro256 rng(1);
  size_t delivered = 0;
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, 25.0);
    c.Subscribe(harness.query, ExactParams());
    const auto answer = c.AnswerQuery(5000);
    harness.proxy0.Receive(answer->shares[0], 5000);
    if (rng.NextBernoulli(0.8)) {
      harness.proxy1.Receive(answer->shares[1], 5000);
      ++delivered;
    }
  }
  harness.proxy0.Forward();
  harness.proxy1.Forward();
  harness.agg->Drain();
  harness.agg->Flush();
  ASSERT_EQ(harness.results.size(), 1u);
  const auto& result = harness.results[0].result;
  EXPECT_EQ(result.participants, delivered);
  EXPECT_EQ(harness.agg->join_stats().joined, delivered);
  // Survivors are all in bucket 2; the estimate scales them back to the
  // population (the estimator treats missing answers as unsampled).
  EXPECT_NEAR(result.buckets[2].estimate.value,
              static_cast<double>(population), 1.0);
  // The lost messages linger as partial join groups until eviction.
  EXPECT_EQ(harness.agg->pending_join_groups(), population - delivered);
}

TEST(FailureTest, TotalProxyOutageYieldsNoResultsNotGarbage) {
  const size_t population = 50;
  Harness harness(population);
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, 25.0);
    c.Subscribe(harness.query, ExactParams());
    const auto answer = c.AnswerQuery(5000);
    harness.proxy0.Receive(answer->shares[0], 5000);
    // Proxy 1 is down: nothing arrives there.
  }
  harness.proxy0.Forward();
  harness.agg->Drain();
  harness.agg->AdvanceWatermark(1000000);  // evicts all partial groups
  EXPECT_TRUE(harness.results.empty());
  EXPECT_EQ(harness.agg->join_stats().joined, 0u);
  EXPECT_EQ(harness.agg->join_stats().evicted_partial, population);
}

TEST(FailureTest, DuplicatedRecordsInTransitAreDropped) {
  // A flaky broker redelivers every record twice; the MID join must not
  // double-count answers.
  const size_t population = 100;
  Harness harness(population);
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, 25.0);
    c.Subscribe(harness.query, ExactParams());
    const auto answer = c.AnswerQuery(5000);
    for (int copy = 0; copy < 2; ++copy) {
      harness.proxy0.Receive(answer->shares[0], 5000);
      harness.proxy1.Receive(answer->shares[1], 5000);
    }
  }
  harness.proxy0.Forward();
  harness.proxy1.Forward();
  harness.agg->Drain();
  harness.agg->Flush();
  ASSERT_EQ(harness.results.size(), 1u);
  EXPECT_EQ(harness.results[0].result.participants, population);
  EXPECT_NEAR(harness.results[0].result.buckets[2].estimate.value,
              static_cast<double>(population), 1e-9);
  EXPECT_GT(harness.agg->join_stats().duplicates_dropped, 0u);
}

TEST(FailureTest, MalformedRecordsSurfaceInEpochStats) {
  // A corrupted share arrives at proxy 0 out-of-band: too short to decode.
  // The proxy forwards it blindly; the aggregator must drop it, count it,
  // and keep every well-formed answer — in both epoch pipeline modes.
  for (const auto mode : {system::EpochPipelineMode::kBarrier,
                          system::EpochPipelineMode::kStreaming}) {
    SCOPED_TRACE(mode == system::EpochPipelineMode::kBarrier ? "barrier"
                                                             : "streaming");
    system::SystemConfig config;
    config.num_clients = 20;
    config.num_proxies = 2;
    config.seed = 7;
    config.pipeline.mode = mode;
    config.pipeline.depth = 2;
    config.pipeline.shard_size = 7;  // 20 clients -> 3 shards
    system::PrivApproxSystem sys(config);
    for (size_t i = 0; i < config.num_clients; ++i) {
      auto& db = sys.client(i).database();
      db.CreateTable("vehicle", {"speed"});
      db.GetTable("vehicle").Insert(500, {localdb::Value(25.0)});
    }
    sys.SubmitQuery(MakeQuery(), ExactParams());
    // Shares travel on per-query lane topics; the garbage lands on query
    // 1's lane at proxy 0 so the forward path carries it.
    sys.broker().Produce("proxy0.q1.in", /*key=*/12345,
                         std::vector<uint8_t>{0xBA, 0xD0, 0x01}, 900);
    const system::EpochStats stats = sys.RunEpoch(1000);
    EXPECT_EQ(stats.malformed_dropped, 1u);
    EXPECT_EQ(stats.participants, config.num_clients);
    // Consumed = every well-formed share plus the injected garbage record.
    EXPECT_EQ(stats.shares_consumed,
              config.num_clients * config.num_proxies + 1);
    // EpochStats is defined as a per-epoch delta of the registry counters —
    // after one epoch, delta and cumulative value must agree exactly.
    metrics::Registry& reg = sys.metrics_registry();
    EXPECT_EQ(stats.malformed_dropped,
              reg.GetCounter("privapprox_malformed_dropped_total", "").Value());
    EXPECT_EQ(stats.shares_consumed,
              reg.GetCounter("privapprox_shares_consumed_total", "").Value());
    EXPECT_EQ(stats.participants,
              reg.GetCounter("privapprox_participants_total", "").Value());
    // A clean follow-up epoch reports zero drops: the stat is per-epoch.
    for (size_t i = 0; i < config.num_clients; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          1500, {localdb::Value(25.0)});
    }
    EXPECT_EQ(sys.RunEpoch(2000).malformed_dropped, 0u);
    // Cumulative counter keeps the first epoch's drop.
    EXPECT_EQ(
        reg.GetCounter("privapprox_malformed_dropped_total", "").Value(), 1u);
  }
}

// ------------------------------------------------------ out-of-order time

TEST(WatermarkTest, BoundedOutOfOrderness) {
  engine::BoundedOutOfOrdernessWatermark wm(100);
  EXPECT_EQ(wm.Current(), INT64_MIN);
  wm.Observe(1000);
  EXPECT_EQ(wm.Current(), 900);
  wm.Observe(950);  // straggler does not move the watermark backwards
  EXPECT_EQ(wm.Current(), 900);
  wm.Observe(2000);
  EXPECT_EQ(wm.Current(), 1900);
  EXPECT_THROW(engine::BoundedOutOfOrdernessWatermark(-1),
               std::invalid_argument);
}

TEST(FailureTest, OutOfOrderArrivalWithStreamWatermark) {
  // Answers from three epochs arrive interleaved; the stream-driven
  // watermark fires window [0, 10000) only once event time has moved past
  // its end plus the out-of-orderness bound.
  const size_t population = 30;
  Harness harness(population);
  auto send_at = [&](uint64_t id, int64_t ts) {
    client::Client c = MakeClient(id, 25.0);
    c.Subscribe(harness.query, ExactParams());
    const auto answer = c.AnswerQuery(ts);
    harness.proxy0.Receive(answer->shares[0], ts);
    harness.proxy1.Receive(answer->shares[1], ts);
  };
  send_at(0, 9000);
  send_at(1, 12000);  // later epoch arrives before epoch-1 stragglers
  send_at(2, 9500);   // straggler within the 1000 ms bound
  harness.proxy0.Forward();
  harness.proxy1.Forward();
  harness.agg->Drain();
  harness.agg->AdvanceWatermarkToStream();
  // Stream watermark = 12000 - 1000 = 11000 >= 10000: the first window
  // fired with both epoch-1 answers despite the interleaving.
  ASSERT_EQ(harness.results.size(), 1u);
  EXPECT_EQ(harness.results[0].window.start_ms, 0);
  EXPECT_EQ(harness.results[0].result.participants, 2u);
}

// --------------------------------------------------- durable store crash

TEST(FailureTest, DurableHistoricalSurvivesSystemRestart) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("privapprox_failure_hist_" +
                        std::to_string(::getpid()));
  fs::remove_all(dir);

  system::SystemConfig config;
  config.num_clients = 40;
  config.historical.enabled = true;
  config.historical.dir = dir.string();
  {
    system::PrivApproxSystem sys(config);
    for (size_t i = 0; i < 40; ++i) {
      auto& db = sys.client(i).database();
      db.CreateTable("vehicle", {"speed"});
      db.GetTable("vehicle").Insert(500, {localdb::Value(25.0)});
    }
    sys.SubmitQuery(MakeQuery(), ExactParams());
    sys.RunEpoch(5000);
    sys.Flush();
    const core::QueryResult live =
        sys.RunHistorical(0, 10000, aggregator::BatchQueryBudget{1.0});
    EXPECT_EQ(live.participants, 40u);
  }  // "crash": the system object is gone; only the log directory remains

  // A fresh system over the same directory reads the persisted answers.
  {
    system::PrivApproxSystem sys(config);
    sys.SubmitQuery(MakeQuery(), ExactParams());
    const core::QueryResult recovered =
        sys.RunHistorical(0, 10000, aggregator::BatchQueryBudget{1.0});
    EXPECT_EQ(recovered.participants, 40u);
    EXPECT_NEAR(recovered.buckets[2].estimate.value, 40.0, 1e-9);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace privapprox
