// Tests for the randomized-response mechanism: distributional behaviour of
// the two coins, unbiasedness of the Eq 5 de-biasing, the Eq 6 accuracy-loss
// metric, and client-side sampling.

#include <gtest/gtest.h>

#include <cmath>

#include "core/randomized_response.h"
#include "core/sampling.h"

namespace privapprox::core {
namespace {

TEST(RandomizationParamsTest, Validation) {
  EXPECT_NO_THROW((RandomizationParams{0.5, 0.5}.Validate()));
  EXPECT_NO_THROW((RandomizationParams{1.0, 0.5}.Validate()));  // p=1 allowed
  EXPECT_THROW((RandomizationParams{0.0, 0.5}.Validate()),
               std::invalid_argument);
  EXPECT_THROW((RandomizationParams{0.5, 0.0}.Validate()),
               std::invalid_argument);
  EXPECT_THROW((RandomizationParams{0.5, 1.0}.Validate()),
               std::invalid_argument);
  EXPECT_THROW((RandomizationParams{1.2, 0.5}.Validate()),
               std::invalid_argument);
}

TEST(RandomizedResponseTest, TruthfulWhenPIsOne) {
  Xoshiro256 rng(1);
  const RandomizedResponse rr(RandomizationParams{1.0, 0.5});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rr.RandomizeBit(true, rng));
    EXPECT_FALSE(rr.RandomizeBit(false, rng));
  }
}

TEST(RandomizedResponseTest, YesProbabilityMatchesTheory) {
  // P[response = yes | truth = yes] = p + (1-p) q;
  // P[response = yes | truth = no ] = (1-p) q.
  Xoshiro256 rng(2);
  const RandomizationParams params{0.6, 0.3};
  const RandomizedResponse rr(params);
  const int n = 200000;
  int yes_given_yes = 0, yes_given_no = 0;
  for (int i = 0; i < n; ++i) {
    yes_given_yes += rr.RandomizeBit(true, rng) ? 1 : 0;
    yes_given_no += rr.RandomizeBit(false, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(yes_given_yes) / n,
              params.p + (1 - params.p) * params.q, 0.005);
  EXPECT_NEAR(static_cast<double>(yes_given_no) / n,
              (1 - params.p) * params.q, 0.005);
}

TEST(RandomizedResponseTest, DebiasRecoversKnownCounts) {
  // Closed-form check of Eq 5: if Ry is exactly its expectation the debias
  // must return the true count exactly.
  const RandomizedResponse rr(RandomizationParams{0.7, 0.4});
  const double total = 10000.0, truthful_yes = 6000.0;
  const double expected_ry =
      truthful_yes * (0.7 + 0.3 * 0.4) + (total - truthful_yes) * (0.3 * 0.4);
  EXPECT_NEAR(rr.DebiasCount(expected_ry, total), truthful_yes, 1e-9);
}

TEST(RandomizedResponseTest, DebiasIsUnbiasedEmpirically) {
  Xoshiro256 rng(3);
  const RandomizedResponse rr(RandomizationParams{0.3, 0.6});
  const size_t total = 10000, truthful_yes = 6000;
  double sum_estimates = 0.0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    size_t ry = 0;
    for (size_t i = 0; i < total; ++i) {
      if (rr.RandomizeBit(i < truthful_yes, rng)) {
        ++ry;
      }
    }
    sum_estimates += rr.DebiasCount(static_cast<double>(ry),
                                    static_cast<double>(total));
  }
  // Mean of estimates within ~3 standard errors of the truth.
  const double mean = sum_estimates / trials;
  const double se = rr.DebiasStdDev(0.6, total) / std::sqrt(trials);
  EXPECT_NEAR(mean, 6000.0, 3.5 * se);
}

TEST(RandomizedResponseTest, RandomizeAnswerPreservesWidth) {
  Xoshiro256 rng(4);
  const RandomizedResponse rr(RandomizationParams{0.9, 0.6});
  BitVector truthful(11);
  truthful.Set(3, true);
  const BitVector randomized = rr.RandomizeAnswer(truthful, rng);
  EXPECT_EQ(randomized.size(), 11u);
}

TEST(RandomizedResponseTest, DebiasHistogramBucketwise) {
  const RandomizedResponse rr(RandomizationParams{0.5, 0.5});
  Histogram randomized(std::vector<double>{600.0, 400.0});
  const Histogram debiased = rr.DebiasHistogram(randomized, 1000.0);
  // Ey = (Ry - 0.25 * 1000) / 0.5
  EXPECT_NEAR(debiased.Count(0), (600.0 - 250.0) / 0.5, 1e-9);
  EXPECT_NEAR(debiased.Count(1), (400.0 - 250.0) / 0.5, 1e-9);
}

TEST(RandomizedResponseTest, DebiasCanGoNegativeWithoutClamping) {
  // Unbiasedness requires not clamping small-count estimates.
  const RandomizedResponse rr(RandomizationParams{0.5, 0.9});
  EXPECT_LT(rr.DebiasCount(100.0, 1000.0), 0.0);
}

TEST(RandomizedResponseTest, DebiasStdDevShrinksWithHigherP) {
  const double total = 10000.0;
  const RandomizedResponse low_p(RandomizationParams{0.3, 0.6});
  const RandomizedResponse high_p(RandomizationParams{0.9, 0.6});
  EXPECT_GT(low_p.DebiasStdDev(0.6, total), high_p.DebiasStdDev(0.6, total));
}

TEST(AccuracyLossTest, Equation6) {
  EXPECT_NEAR(AccuracyLoss(100.0, 97.0), 0.03, 1e-12);
  EXPECT_NEAR(AccuracyLoss(100.0, 103.0), 0.03, 1e-12);
  EXPECT_DOUBLE_EQ(AccuracyLoss(0.0, 5.0), 0.0);
}

// ---------------------------------------------------------------- sampling

TEST(SamplingPolicyTest, RejectsBadFractions) {
  EXPECT_THROW(SamplingPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(SamplingPolicy(1.5), std::invalid_argument);
  EXPECT_NO_THROW(SamplingPolicy(1.0));
}

TEST(SamplingPolicyTest, ParticipationRateMatchesFraction) {
  Xoshiro256 rng(5);
  const SamplingPolicy policy(0.6);
  int participants = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    participants += policy.ShouldParticipate(rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(participants) / n, 0.6, 0.01);
}

TEST(SamplingPolicyTest, FullSamplingTakesEveryone) {
  Xoshiro256 rng(6);
  const SamplingPolicy policy(1.0);
  const auto participants = policy.SampleParticipants(1000, rng);
  EXPECT_EQ(participants.size(), 1000u);
}

TEST(SamplingPolicyTest, SampleParticipantsIndicesValidAndSorted) {
  Xoshiro256 rng(7);
  const SamplingPolicy policy(0.3);
  const auto participants = policy.SampleParticipants(10000, rng);
  EXPECT_GT(participants.size(), 2500u);
  EXPECT_LT(participants.size(), 3500u);
  for (size_t i = 1; i < participants.size(); ++i) {
    EXPECT_LT(participants[i - 1], participants[i]);
    EXPECT_LT(participants[i], 10000u);
  }
}

}  // namespace
}  // namespace privapprox::core
