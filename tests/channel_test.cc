// The streaming runtime primitive (common/channel.h): bounded-capacity
// blocking, close + drain semantics, many-producer/many-consumer stress,
// and the Stage worker runner (including error propagation with a clean
// shutdown). The MPMC stress tests are the ones the TSan job watches.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/channel.h"

namespace privapprox {
namespace {

TEST(ChannelTest, RejectsZeroCapacity) {
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

TEST(ChannelTest, PushPopRoundTripInFifoOrder) {
  Channel<int> channel(4);
  EXPECT_TRUE(channel.Push(1));
  EXPECT_TRUE(channel.Push(2));
  EXPECT_TRUE(channel.Push(3));
  int out = 0;
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(ChannelTest, TryPopDoesNotBlock) {
  Channel<int> channel(2);
  int out = 0;
  EXPECT_FALSE(channel.TryPop(out));
  channel.Push(7);
  EXPECT_TRUE(channel.TryPop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(channel.TryPop(out));
}

TEST(ChannelTest, FullChannelBlocksProducerUntilPop) {
  Channel<int> channel(2);
  ASSERT_TRUE(channel.Push(1));
  ASSERT_TRUE(channel.Push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    channel.Push(3);  // must block: capacity 2, both slots full
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  int out = 0;
  ASSERT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  // The freed slot was taken by the unblocked push: {2, 3} remain in order.
  ASSERT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(ChannelTest, CloseDrainsPendingThenPopsReturnFalse) {
  Channel<int> channel(4);
  channel.Push(10);
  channel.Push(20);
  channel.Close();
  EXPECT_FALSE(channel.Push(30));  // closed: push fails, value dropped
  int out = 0;
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(channel.Pop(out));
  EXPECT_EQ(out, 20);
  EXPECT_FALSE(channel.Pop(out));  // drained
  EXPECT_FALSE(channel.Pop(out));  // stays drained
}

TEST(ChannelTest, CloseWakesBlockedConsumer) {
  Channel<int> channel(1);
  std::atomic<bool> consumer_done{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(channel.Pop(out));  // blocks until Close, then false
    consumer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(consumer_done.load());
  channel.Close();
  consumer.join();
  EXPECT_TRUE(consumer_done.load());
}

TEST(ChannelTest, CloseWakesBlockedProducer) {
  Channel<int> channel(1);
  channel.Push(1);
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result.store(channel.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  channel.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

TEST(ChannelTest, ManyProducersManyConsumersDeliverEverythingOnce) {
  // 4 producers x 2000 distinct items through a capacity-8 channel into 4
  // consumers; every item must arrive exactly once.
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 4;
  constexpr int kPerProducer = 2000;
  Channel<int> channel(8);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.Push(static_cast<int>(p) * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int item = 0;
      while (channel.Pop(item)) {
        seen[static_cast<size_t>(item)].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  channel.Close();
  for (auto& t : consumers) {
    t.join();
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

TEST(ChannelTest, PerProducerOrderIsPreservedThroughTheQueue) {
  // FIFO per producer: a single consumer must see each producer's items in
  // increasing order even when two producers interleave.
  Channel<std::pair<int, int>> channel(4);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 500; ++i) {
        channel.Push({p, i});
      }
    });
  }
  std::vector<int> last(2, -1);
  std::thread consumer([&] {
    std::pair<int, int> item;
    while (channel.Pop(item)) {
      EXPECT_GT(item.second, last[static_cast<size_t>(item.first)]);
      last[static_cast<size_t>(item.first)] = item.second;
    }
  });
  for (auto& t : producers) {
    t.join();
  }
  channel.Close();
  consumer.join();
  EXPECT_EQ(last[0], 499);
  EXPECT_EQ(last[1], 499);
}

TEST(StageTest, WorkersProcessEveryItemThenExitOnCloseDrain) {
  Channel<int> channel(4);
  std::atomic<long> sum{0};
  Stage<int> stage(channel, 3, [&](int&& item) { sum += item; });
  for (int i = 1; i <= 100; ++i) {
    channel.Push(i);
  }
  channel.Close();
  stage.Join();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(StageTest, RejectsZeroWorkers) {
  Channel<int> channel(1);
  EXPECT_THROW(Stage<int>(channel, 0, [](int&&) {}), std::invalid_argument);
}

TEST(StageTest, JoinRethrowsFirstWorkerException) {
  Channel<int> channel(2);
  std::atomic<int> processed{0};
  Stage<int> stage(channel, 2, [&](int&& item) {
    if (item == 13) {
      throw std::runtime_error("unlucky");
    }
    ++processed;
  });
  for (int i = 0; i < 50; ++i) {
    channel.Push(i);  // never deadlocks: a failed stage keeps draining
  }
  channel.Close();
  EXPECT_THROW(stage.Join(), std::runtime_error);
  // Everything before the failure was processed; the rest was drained.
  EXPECT_GE(processed.load(), 13);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(StageTest, PipelineOfStagesPropagatesBackpressureEndToEnd) {
  // Two chained stages with capacity-1 channels: the producer can only run
  // ahead by the total buffer space, so a slow tail stage throttles the
  // head. The test asserts completion + exact delivery, and TSan checks
  // the synchronization.
  Channel<int> first(1);
  Channel<int> second(1);
  std::atomic<long> sum{0};
  Stage<int> tail(second, 1, [&](int&& item) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    sum += item;
  });
  Stage<int> head(first, 2, [&](int&& item) { second.Push(item * 2); });
  for (int i = 1; i <= 64; ++i) {
    first.Push(i);
  }
  first.Close();
  head.Join();
  second.Close();
  tail.Join();
  EXPECT_EQ(sum.load(), 2 * (64 * 65) / 2);
}

}  // namespace
}  // namespace privapprox
