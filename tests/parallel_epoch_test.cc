// Determinism of the parallel epoch pipeline (system/system.cc): RunEpoch
// with num_worker_threads=1 and num_worker_threads=N must produce identical
// WindowedResults and byte-identical broker topic contents. The parallel
// path shards client answering across the pool but merges shares into proxy
// topics in client-id order, so every downstream byte and double matches the
// sequential run exactly.
//
// The streaming stage/channel mode must additionally match the barrier mode
// bit-for-bit at every worker count: per-proxy reorder buffers keep topic
// appends in client-id order, and the aggregator's reorder buffer feeds the
// MID join in deterministic (shard, source) order. Run this suite under
// -DPRIVAPPROX_SANITIZE=thread to check the stage synchronization.

#include <gtest/gtest.h>

#include <vector>

#include "core/budget_manager.h"
#include "core/privacy.h"
#include "system/system.h"

namespace privapprox::system {
namespace {

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(5000)
      .WithWindowMs(10000)
      .WithSlideMs(5000)
      .Build();
}

// Per-topic counters plus every fired window, captured after a fixed epoch
// schedule — the full observable output of one run.
struct RunSnapshot {
  std::vector<EpochStats> epochs;
  std::vector<aggregator::WindowedResult> results;
  std::vector<broker::TopicMetrics> topic_metrics;
  std::vector<std::string> topic_names;
};

RunSnapshot RunScenario(size_t num_worker_threads,
                        EpochPipelineMode mode = EpochPipelineMode::kBarrier,
                        size_t pipeline_depth = 2, size_t agg_shards = 1) {
  SystemConfig config;
  config.num_clients = 400;
  config.num_proxies = 3;
  config.seed = 99;
  config.pipeline.num_worker_threads = num_worker_threads;
  config.pipeline.mode = mode;
  config.pipeline.depth = pipeline_depth;
  config.aggregator.num_shards = agg_shards;
  // Small shards so the 400 clients split into 7 in-flight batches and the
  // streaming stages genuinely overlap.
  config.pipeline.shard_size = 64;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    auto& db = sys.client(i).database();
    db.CreateTable("vehicle", {"speed"});
    // Spread clients across buckets; refresh rows per epoch below.
    db.GetTable("vehicle").Insert(
        500, {localdb::Value(static_cast<double>((i * 13) % 100))});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  sys.SubmitQuery(SpeedQuery(), params);

  RunSnapshot snapshot;
  for (int64_t now = 5000; now <= 15000; now += 5000) {
    for (size_t i = 0; i < config.num_clients; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          now - 100, {localdb::Value(static_cast<double>((i * 13) % 100))});
    }
    snapshot.epochs.push_back(sys.RunEpoch(now));
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  snapshot.results = sys.TakeResults();
  for (const std::string& name : sys.broker().TopicNames()) {
    snapshot.topic_names.push_back(name);
    snapshot.topic_metrics.push_back(sys.broker().GetTopic(name).metrics());
  }
  return snapshot;
}

// Asserts two runs are observably identical: per-epoch stats, fired windows
// bit for bit, and per-topic record/byte counters in both directions.
void ExpectSnapshotsIdentical(const RunSnapshot& sequential,
                              const RunSnapshot& parallel) {
  ASSERT_EQ(parallel.epochs.size(), sequential.epochs.size());
  for (size_t e = 0; e < sequential.epochs.size(); ++e) {
    EXPECT_EQ(parallel.epochs[e].participants,
              sequential.epochs[e].participants);
    EXPECT_EQ(parallel.epochs[e].shares_sent, sequential.epochs[e].shares_sent);
    EXPECT_EQ(parallel.epochs[e].shares_forwarded,
              sequential.epochs[e].shares_forwarded);
    EXPECT_EQ(parallel.epochs[e].shares_consumed,
              sequential.epochs[e].shares_consumed);
    EXPECT_EQ(parallel.epochs[e].malformed_dropped,
              sequential.epochs[e].malformed_dropped);
  }

  // Fired windows: identical order, windows, and bit-for-bit doubles.
  ASSERT_EQ(parallel.results.size(), sequential.results.size());
  ASSERT_GT(sequential.results.size(), 0u);
  for (size_t w = 0; w < sequential.results.size(); ++w) {
    const auto& a = sequential.results[w];
    const auto& b = parallel.results[w];
    EXPECT_EQ(b.window, a.window);
    EXPECT_EQ(b.result.participants, a.result.participants);
    ASSERT_EQ(b.result.buckets.size(), a.result.buckets.size());
    for (size_t i = 0; i < a.result.buckets.size(); ++i) {
      EXPECT_EQ(b.result.buckets[i].estimate.value,
                a.result.buckets[i].estimate.value);
      EXPECT_EQ(b.result.buckets[i].estimate.error,
                a.result.buckets[i].estimate.error);
      EXPECT_EQ(b.result.buckets[i].randomized_count,
                a.result.buckets[i].randomized_count);
    }
  }

  // Broker topics: identical byte and record counts in both directions.
  ASSERT_EQ(parallel.topic_names, sequential.topic_names);
  for (size_t t = 0; t < sequential.topic_metrics.size(); ++t) {
    EXPECT_EQ(parallel.topic_metrics[t].records_in,
              sequential.topic_metrics[t].records_in)
        << sequential.topic_names[t];
    EXPECT_EQ(parallel.topic_metrics[t].bytes_in,
              sequential.topic_metrics[t].bytes_in)
        << sequential.topic_names[t];
    EXPECT_EQ(parallel.topic_metrics[t].records_out,
              sequential.topic_metrics[t].records_out)
        << sequential.topic_names[t];
    EXPECT_EQ(parallel.topic_metrics[t].bytes_out,
              sequential.topic_metrics[t].bytes_out)
        << sequential.topic_names[t];
  }
}

TEST(ParallelEpochTest, ParallelMatchesSequentialExactly) {
  ExpectSnapshotsIdentical(RunScenario(1), RunScenario(4));
}

TEST(ParallelEpochTest, StreamingMatchesBarrierBitForBitAtEveryWorkerCount) {
  const RunSnapshot barrier = RunScenario(1, EpochPipelineMode::kBarrier);
  for (size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExpectSnapshotsIdentical(
        barrier, RunScenario(workers, EpochPipelineMode::kStreaming));
  }
}

TEST(ParallelEpochTest, ShardedAggregatorIsBitIdenticalToSingleShard) {
  // The shard/merge determinism invariant (DESIGN.md §6g): any shard count,
  // in either pipeline mode, at any worker count, produces the same
  // results, stats, and broker traffic as the 1-shard 1-thread run.
  const RunSnapshot oracle =
      RunScenario(1, EpochPipelineMode::kBarrier, 2, /*agg_shards=*/1);
  for (const auto mode :
       {EpochPipelineMode::kBarrier, EpochPipelineMode::kStreaming}) {
    for (size_t shards : {1u, 2u, 4u}) {
      for (size_t workers : {1u, 4u}) {
        SCOPED_TRACE("mode=" +
                     std::string(mode == EpochPipelineMode::kBarrier
                                     ? "barrier"
                                     : "streaming") +
                     " shards=" + std::to_string(shards) +
                     " workers=" + std::to_string(workers));
        ExpectSnapshotsIdentical(oracle,
                                 RunScenario(workers, mode, 2, shards));
      }
    }
  }
}

TEST(ParallelEpochTest, DefaultShardCountFollowsWorkerThreads) {
  // aggregator.num_shards = 0 resolves to one shard per worker thread;
  // the result must still match the explicit 1-shard oracle.
  const RunSnapshot oracle =
      RunScenario(1, EpochPipelineMode::kBarrier, 2, /*agg_shards=*/1);
  ExpectSnapshotsIdentical(
      oracle, RunScenario(4, EpochPipelineMode::kStreaming, 2,
                          /*agg_shards=*/0));
}

TEST(ParallelEpochTest, StreamingIsInsensitiveToPipelineDepth) {
  const RunSnapshot deep =
      RunScenario(4, EpochPipelineMode::kStreaming, /*pipeline_depth=*/16);
  const RunSnapshot shallow =
      RunScenario(4, EpochPipelineMode::kStreaming, /*pipeline_depth=*/1);
  ExpectSnapshotsIdentical(deep, shallow);
}

TEST(ParallelEpochTest, WorkerThreadKnobIsHonored) {
  SystemConfig config;
  config.num_clients = 2;
  config.pipeline.num_worker_threads = 3;
  PrivApproxSystem sys(config);
  EXPECT_EQ(sys.num_worker_threads(), 3u);
}

TEST(ParallelEpochTest, DeprecatedWorkerThreadAliasStillHonored) {
  SystemConfig config;
  config.num_clients = 2;
  config.num_worker_threads = 3;  // legacy flat name
  PrivApproxSystem sys(config);
  EXPECT_EQ(sys.num_worker_threads(), 3u);
}

TEST(ParallelEpochTest, DefaultUsesHardwareConcurrency) {
  SystemConfig config;
  config.num_clients = 2;
  PrivApproxSystem sys(config);
  EXPECT_GE(sys.num_worker_threads(), 1u);
}

// EpochStats is defined as the per-epoch delta of the registry's core
// pipeline counters; summing the deltas over a run must reproduce the
// cumulative registry values exactly, in both pipeline modes.
void ExpectStatsMatchRegistry(EpochPipelineMode mode) {
  SystemConfig config;
  config.num_clients = 150;
  config.num_proxies = 2;
  config.seed = 31;
  config.pipeline.num_worker_threads = 2;
  config.pipeline.mode = mode;
  config.pipeline.shard_size = 32;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    auto& db = sys.client(i).database();
    db.CreateTable("vehicle", {"speed"});
    db.GetTable("vehicle").Insert(
        500, {localdb::Value(static_cast<double>((i * 13) % 100))});
  }
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  sys.SubmitQuery(SpeedQuery(), params);

  EpochStats total;
  size_t epochs = 0;
  for (int64_t now = 5000; now <= 15000; now += 5000) {
    const EpochStats stats = sys.RunEpoch(now);
    total.participants += stats.participants;
    total.shares_sent += stats.shares_sent;
    total.shares_forwarded += stats.shares_forwarded;
    total.shares_consumed += stats.shares_consumed;
    total.malformed_dropped += stats.malformed_dropped;
    ++epochs;
  }

  auto& reg = sys.metrics_registry();
  EXPECT_EQ(reg.GetCounter("privapprox_epochs_total", "").Value(), epochs);
  EXPECT_EQ(reg.GetCounter("privapprox_participants_total", "").Value(),
            total.participants);
  EXPECT_EQ(reg.GetCounter("privapprox_shares_sent_total", "").Value(),
            total.shares_sent);
  EXPECT_EQ(reg.GetCounter("privapprox_shares_forwarded_total", "").Value(),
            total.shares_forwarded);
  EXPECT_EQ(reg.GetCounter("privapprox_shares_consumed_total", "").Value(),
            total.shares_consumed);
  EXPECT_EQ(reg.GetCounter("privapprox_malformed_dropped_total", "").Value(),
            total.malformed_dropped);
  EXPECT_GT(total.shares_sent, 0u);
}

TEST(ParallelEpochTest, EpochStatsMatchesRegistryBarrier) {
  ExpectStatsMatchRegistry(EpochPipelineMode::kBarrier);
}

TEST(ParallelEpochTest, EpochStatsMatchesRegistryStreaming) {
  ExpectStatsMatchRegistry(EpochPipelineMode::kStreaming);
}

// ---------------------------------------------------- multi-query runtime

core::Query TempQuery() {
  return core::QueryBuilder()
      .WithId(2)
      .WithSql("SELECT temperature FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 5, true))
      .WithFrequencyMs(5000)
      .WithWindowMs(10000)
      .WithSlideMs(5000)
      .Build();
}

core::ExecutionParams SpeedParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.6;
  params.randomization = {0.9, 0.6};
  return params;
}

core::ExecutionParams TempParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.8;
  params.randomization = {0.85, 0.5};
  return params;
}

// Runs the standard 3-epoch schedule with an arbitrary query set and
// returns the full observable output.
RunSnapshot RunMultiScenario(std::vector<SystemConfig::QuerySpec> queries,
                             size_t num_worker_threads,
                             EpochPipelineMode mode) {
  SystemConfig config;
  config.num_clients = 400;
  config.num_proxies = 3;
  config.seed = 99;
  config.queries = std::move(queries);
  config.pipeline.num_worker_threads = num_worker_threads;
  config.pipeline.mode = mode;
  config.pipeline.depth = 2;
  config.pipeline.shard_size = 64;
  config.aggregator.num_shards = 2;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    auto& db = sys.client(i).database();
    db.CreateTable("vehicle", {"speed", "temperature"});
    db.GetTable("vehicle").Insert(
        500, {localdb::Value(static_cast<double>((i * 13) % 100)),
              localdb::Value(static_cast<double>((i * 7) % 100))});
  }
  RunSnapshot snapshot;
  for (int64_t now = 5000; now <= 15000; now += 5000) {
    for (size_t i = 0; i < config.num_clients; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          now - 100, {localdb::Value(static_cast<double>((i * 13) % 100)),
                      localdb::Value(static_cast<double>((i * 7) % 100))});
    }
    snapshot.epochs.push_back(sys.RunEpoch(now));
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  snapshot.results = sys.TakeResults();
  for (const std::string& name : sys.broker().TopicNames()) {
    snapshot.topic_names.push_back(name);
    snapshot.topic_metrics.push_back(sys.broker().GetTopic(name).metrics());
  }
  return snapshot;
}

// Anchor invariant: a multi-query run with exactly one query is observably
// identical — results, per-epoch stats, every broker topic counter — to
// the classic single-query SubmitQuery path, in both pipeline modes.
TEST(MultiQueryTest, OneQueryConfigListMatchesLegacySubmitExactly) {
  for (const auto mode :
       {EpochPipelineMode::kBarrier, EpochPipelineMode::kStreaming}) {
    SCOPED_TRACE(mode == EpochPipelineMode::kBarrier ? "barrier"
                                                     : "streaming");
    const RunSnapshot legacy =
        RunScenario(2, mode, /*pipeline_depth=*/2, /*agg_shards=*/2);
    // Same scenario, but the query arrives via the config's query list.
    SystemConfig config;
    config.num_clients = 400;
    config.num_proxies = 3;
    config.seed = 99;
    config.queries = {{SpeedQuery(), SpeedParams()}};
    config.pipeline.num_worker_threads = 2;
    config.pipeline.mode = mode;
    config.pipeline.depth = 2;
    config.pipeline.shard_size = 64;
    config.aggregator.num_shards = 2;
    PrivApproxSystem sys(config);
    for (size_t i = 0; i < config.num_clients; ++i) {
      auto& db = sys.client(i).database();
      db.CreateTable("vehicle", {"speed"});
      db.GetTable("vehicle").Insert(
          500, {localdb::Value(static_cast<double>((i * 13) % 100))});
    }
    RunSnapshot multi;
    for (int64_t now = 5000; now <= 15000; now += 5000) {
      for (size_t i = 0; i < config.num_clients; ++i) {
        sys.client(i).database().GetTable("vehicle").Insert(
            now - 100, {localdb::Value(static_cast<double>((i * 13) % 100))});
      }
      multi.epochs.push_back(sys.RunEpoch(now));
      sys.AdvanceWatermark(now);
    }
    sys.Flush();
    multi.results = sys.TakeResults();
    for (const std::string& name : sys.broker().TopicNames()) {
      multi.topic_names.push_back(name);
      multi.topic_metrics.push_back(sys.broker().GetTopic(name).metrics());
    }
    ExpectSnapshotsIdentical(legacy, multi);
  }
}

// With two concurrent queries the streaming dataflow must still be
// bit-identical to the barrier reference, at one worker and at several.
TEST(MultiQueryTest, TwoQueryStreamingMatchesBarrierAtEveryWorkerCount) {
  const std::vector<SystemConfig::QuerySpec> queries = {
      {SpeedQuery(), SpeedParams()}, {TempQuery(), TempParams()}};
  const RunSnapshot barrier =
      RunMultiScenario(queries, 1, EpochPipelineMode::kBarrier);
  for (const size_t workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunSnapshot streaming =
        RunMultiScenario(queries, workers, EpochPipelineMode::kStreaming);
    ExpectSnapshotsIdentical(barrier, streaming);
  }
}

// Query isolation: each query's results in a joint 2-query run are
// bit-identical to a run where it is the only query registered — the
// shared sampling draw plus per-query randomization streams guarantee no
// cross-query interference. Lane topic traffic must match too.
TEST(MultiQueryTest, EachQueryMatchesItsIsolatedRun) {
  const RunSnapshot joint = RunMultiScenario(
      {{SpeedQuery(), SpeedParams()}, {TempQuery(), TempParams()}}, 2,
      EpochPipelineMode::kStreaming);
  const std::vector<SystemConfig::QuerySpec> solos[] = {
      {{SpeedQuery(), SpeedParams()}}, {{TempQuery(), TempParams()}}};
  for (const auto& solo_spec : solos) {
    const uint64_t qid = solo_spec[0].query.query_id;
    SCOPED_TRACE("query=" + std::to_string(qid));
    const RunSnapshot solo =
        RunMultiScenario(solo_spec, 2, EpochPipelineMode::kStreaming);

    // Results for this query, in order, bit for bit.
    std::vector<const aggregator::WindowedResult*> joint_q;
    for (const auto& r : joint.results) {
      if (r.query_id == qid) {
        joint_q.push_back(&r);
      }
    }
    ASSERT_EQ(joint_q.size(), solo.results.size());
    ASSERT_GT(solo.results.size(), 0u);
    for (size_t w = 0; w < solo.results.size(); ++w) {
      const auto& a = solo.results[w];
      const auto& b = *joint_q[w];
      EXPECT_EQ(b.window, a.window);
      EXPECT_EQ(b.result.participants, a.result.participants);
      EXPECT_EQ(b.result.sampling_fraction, a.result.sampling_fraction);
      ASSERT_EQ(b.result.buckets.size(), a.result.buckets.size());
      for (size_t i = 0; i < a.result.buckets.size(); ++i) {
        EXPECT_EQ(b.result.buckets[i].estimate.value,
                  a.result.buckets[i].estimate.value);
        EXPECT_EQ(b.result.buckets[i].estimate.error,
                  a.result.buckets[i].estimate.error);
        EXPECT_EQ(b.result.buckets[i].randomized_count,
                  a.result.buckets[i].randomized_count);
      }
    }

    // This query's lane topics carried identical traffic in both runs.
    const std::string suffix_in = ".q" + std::to_string(qid) + ".in";
    const std::string suffix_out = ".q" + std::to_string(qid) + ".out";
    size_t lanes_checked = 0;
    for (size_t t = 0; t < joint.topic_names.size(); ++t) {
      const std::string& name = joint.topic_names[t];
      if (!name.ends_with(suffix_in) && !name.ends_with(suffix_out)) {
        continue;
      }
      const auto it = std::find(solo.topic_names.begin(),
                                solo.topic_names.end(), name);
      ASSERT_NE(it, solo.topic_names.end()) << name;
      const auto& solo_m =
          solo.topic_metrics[it - solo.topic_names.begin()];
      EXPECT_EQ(joint.topic_metrics[t].records_in, solo_m.records_in)
          << name;
      EXPECT_EQ(joint.topic_metrics[t].bytes_in, solo_m.bytes_in) << name;
      ++lanes_checked;
    }
    EXPECT_EQ(lanes_checked, 6u);  // 3 proxies x {in, out}
  }
}

// Admission control at the system surface: a duplicate QID is rejected, and
// the single-query UpdateParams shim refuses to guess between two queries.
TEST(MultiQueryTest, DuplicateSubmitAndAmbiguousShimAreRejected) {
  SystemConfig config;
  config.num_clients = 4;
  PrivApproxSystem sys(config);
  sys.SubmitQuery(SpeedQuery(), SpeedParams());
  EXPECT_THROW(sys.SubmitQuery(SpeedQuery(), SpeedParams()),
               std::invalid_argument);
  sys.SubmitQuery(TempQuery(), TempParams());
  EXPECT_EQ(sys.num_queries(), 2u);
  EXPECT_THROW(sys.UpdateParams(SpeedParams()), std::logic_error);
  EXPECT_NO_THROW(sys.UpdateParams(1, SpeedParams()));
}

// The privacy-budget manager at the system surface: under a finite fleet
// cap the second query is admitted with a reduced sampling fraction, that
// reduced s is what every one of its QueryResults reports, and a third
// query that cannot fit even at the sampling floor is refused while the
// admitted queries keep producing windows.
TEST(MultiQueryTest, BudgetCapDownsamplesAndSurfacesReducedSampling) {
  const double eps_speed = core::EpsilonZk(SpeedParams().randomization,
                                           SpeedParams().sampling_fraction);
  SystemConfig config;
  config.num_clients = 200;
  config.num_proxies = 2;
  config.seed = 7;
  config.budget.max_epsilon_zk = eps_speed + 0.4;
  PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    auto& db = sys.client(i).database();
    db.CreateTable("vehicle", {"speed", "temperature"});
    db.GetTable("vehicle").Insert(
        500, {localdb::Value(static_cast<double>((i * 13) % 100)),
              localdb::Value(static_cast<double>((i * 7) % 100))});
  }

  // Query 1 fits as requested; query 2 is down-sampled onto the 0.4 of
  // zero-knowledge budget that remains.
  const core::ExecutionParams speed_admitted =
      sys.SubmitQuery(SpeedQuery(), SpeedParams());
  EXPECT_EQ(speed_admitted.sampling_fraction,
            SpeedParams().sampling_fraction);
  const core::ExecutionParams temp_admitted =
      sys.SubmitQuery(TempQuery(), TempParams());
  EXPECT_LT(temp_admitted.sampling_fraction, TempParams().sampling_fraction);
  EXPECT_EQ(temp_admitted.randomization.p, TempParams().randomization.p);
  EXPECT_EQ(temp_admitted.randomization.q, TempParams().randomization.q);
  EXPECT_NEAR(core::EpsilonZk(temp_admitted.randomization,
                              temp_admitted.sampling_fraction),
              0.4, 1e-9);

  // The fleet budget is exhausted: a third query is refused outright, and
  // the refusal leaves the ledger untouched.
  const core::Query third = core::QueryBuilder()
                                .WithId(3)
                                .WithSql("SELECT speed FROM vehicle")
                                .WithAnswerFormat(
                                    core::AnswerFormat::UniformNumeric(
                                        0, 100, 10, true))
                                .WithFrequencyMs(5000)
                                .WithWindowMs(10000)
                                .WithSlideMs(10000)
                                .Build();
  EXPECT_THROW(sys.SubmitQuery(third, SpeedParams()),
               core::BudgetExceededError);
  EXPECT_EQ(sys.num_queries(), 2u);
  EXPECT_NEAR(sys.budget_manager().spent(), config.budget.max_epsilon_zk,
              1e-9);

  // Both admitted queries keep running, and query 2's fired windows report
  // the reduced sampling fraction the estimator actually de-biased with.
  for (int64_t now = 5000; now <= 15000; now += 5000) {
    for (size_t i = 0; i < config.num_clients; ++i) {
      sys.client(i).database().GetTable("vehicle").Insert(
          now - 100, {localdb::Value(static_cast<double>((i * 13) % 100)),
                      localdb::Value(static_cast<double>((i * 7) % 100))});
    }
    sys.RunEpoch(now);
    sys.AdvanceWatermark(now);
  }
  sys.Flush();
  size_t speed_windows = 0;
  size_t temp_windows = 0;
  for (const auto& windowed : sys.TakeResults()) {
    if (windowed.query_id == 1) {
      ++speed_windows;
      EXPECT_EQ(windowed.result.sampling_fraction,
                speed_admitted.sampling_fraction);
    } else {
      ASSERT_EQ(windowed.query_id, 2u);
      ++temp_windows;
      EXPECT_EQ(windowed.result.sampling_fraction,
                temp_admitted.sampling_fraction);
    }
  }
  EXPECT_GT(speed_windows, 0u);
  EXPECT_GT(temp_windows, 0u);
}

}  // namespace
}  // namespace privapprox::system
