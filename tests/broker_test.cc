// Tests for the pub/sub broker substrate: topics, partitions, offsets,
// consumers, metrics, and concurrent producers.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "broker/broker.h"

namespace privapprox::broker {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

TEST(TopicTest, AppendAssignsSequentialOffsets) {
  Topic topic("t", 1);
  EXPECT_EQ(topic.Append(1, Payload({1}), 0), 0u);
  EXPECT_EQ(topic.Append(2, Payload({2}), 0), 1u);
  EXPECT_EQ(topic.EndOffset(0), 2u);
}

TEST(TopicTest, PartitionAssignmentIsStableAndInRange) {
  Topic topic("t", 4);
  for (uint64_t key = 0; key < 100; ++key) {
    const size_t p1 = topic.PartitionOf(key);
    const size_t p2 = topic.PartitionOf(key);
    EXPECT_EQ(p1, p2);
    EXPECT_LT(p1, 4u);
  }
}

TEST(TopicTest, PartitionsSpreadKeys) {
  Topic topic("t", 4);
  std::array<int, 4> counts{};
  for (uint64_t key = 0; key < 4000; ++key) {
    counts[topic.PartitionOf(key)]++;
  }
  for (int count : counts) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(TopicTest, ReadRespectsOffsetAndLimit) {
  Topic topic("t", 1);
  for (int i = 0; i < 10; ++i) {
    topic.Append(0, Payload({static_cast<uint8_t>(i)}), i);
  }
  const auto records = topic.Read(0, 4, 3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payload[0], 4);
  EXPECT_EQ(records[0].timestamp_ms, 4);
  EXPECT_EQ(records[2].offset, 6u);
  EXPECT_TRUE(topic.Read(0, 10, 5).empty());
}

TEST(TopicTest, AppendBatchMatchesSequentialAppends) {
  Topic seq("seq", 4);
  Topic batched("batched", 4);
  std::vector<ProduceRecord> records;
  for (uint64_t i = 0; i < 100; ++i) {
    const std::vector<uint8_t> payload{static_cast<uint8_t>(i),
                                       static_cast<uint8_t>(i * 7)};
    seq.Append(i * 31, payload, static_cast<int64_t>(i));
    records.push_back(ProduceRecord{i * 31, payload, static_cast<int64_t>(i)});
  }
  batched.AppendBatch(std::move(records));
  for (size_t p = 0; p < 4; ++p) {
    const auto expected = seq.Read(p, 0, 1000);
    const auto actual = batched.Read(p, 0, 1000);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].offset, expected[i].offset);
      EXPECT_EQ(actual[i].key, expected[i].key);
      EXPECT_EQ(actual[i].timestamp_ms, expected[i].timestamp_ms);
      EXPECT_EQ(actual[i].payload, expected[i].payload);
    }
  }
  EXPECT_EQ(batched.metrics().records_in, seq.metrics().records_in);
  EXPECT_EQ(batched.metrics().bytes_in, seq.metrics().bytes_in);
}

TEST(TopicTest, AppendBatchEmptyIsNoop) {
  Topic topic("t", 2);
  topic.AppendBatch({});
  EXPECT_EQ(topic.metrics().records_in, 0u);
  EXPECT_EQ(topic.EndOffset(0), 0u);
  EXPECT_EQ(topic.EndOffset(1), 0u);
}

TEST(BrokerTest, EnsureTopicAttachesOrCreates) {
  Broker broker;
  Topic& created = broker.EnsureTopic("t", 2);
  Topic& attached = broker.EnsureTopic("t", 2);
  EXPECT_EQ(&created, &attached);
  // Partition-count disagreement on an existing topic is a config error.
  EXPECT_THROW(broker.EnsureTopic("t", 3), std::invalid_argument);
}

TEST(TopicTest, BadPartitionThrows) {
  Topic topic("t", 2);
  EXPECT_THROW(topic.Read(2, 0, 1), std::out_of_range);
  EXPECT_THROW(topic.EndOffset(2), std::out_of_range);
}

TEST(TopicTest, MetricsTrackBytes) {
  Topic topic("t", 1);
  topic.Append(0, Payload({1, 2, 3}), 0);
  topic.Append(0, Payload({4, 5}), 0);
  (void)topic.Read(0, 0, 10);
  const TopicMetrics metrics = topic.metrics();
  EXPECT_EQ(metrics.records_in, 2u);
  EXPECT_EQ(metrics.bytes_in, 5u);
  EXPECT_EQ(metrics.records_out, 2u);
  EXPECT_EQ(metrics.bytes_out, 5u);
}

TEST(TopicTest, ConcurrentProducersLoseNothing) {
  Topic topic("t", 4);
  constexpr int kThreads = 8, kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&topic, t] {
      for (int i = 0; i < kPerThread; ++i) {
        topic.Append(static_cast<uint64_t>(t * kPerThread + i), {1, 2}, 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  uint64_t total = 0;
  for (size_t p = 0; p < topic.num_partitions(); ++p) {
    total += topic.EndOffset(p);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(TopicTest, ConcurrentProduceAndConsume) {
  // A producer thread races a consumer; the consumer must eventually see
  // every record exactly once, in per-partition order.
  Topic topic("t", 2);
  constexpr uint64_t kTotal = 20000;
  std::thread producer([&topic] {
    for (uint64_t i = 0; i < kTotal; ++i) {
      topic.Append(i, {static_cast<uint8_t>(i & 0xFF)}, static_cast<int64_t>(i));
    }
  });
  Consumer consumer(topic);
  uint64_t seen = 0;
  std::array<int64_t, 2> last_ts = {-1, -1};
  while (seen < kTotal) {
    for (const auto& record : consumer.Poll(512)) {
      const size_t p = topic.PartitionOf(record.key);
      EXPECT_GT(record.timestamp_ms, last_ts[p]);  // per-partition order
      last_ts[p] = record.timestamp_ms;
      ++seen;
    }
  }
  producer.join();
  EXPECT_EQ(seen, kTotal);
  EXPECT_TRUE(consumer.CaughtUp());
}

TEST(BrokerTest, TopicLifecycle) {
  Broker broker;
  broker.CreateTopic("answers", 2);
  EXPECT_TRUE(broker.HasTopic("answers"));
  EXPECT_FALSE(broker.HasTopic("keys"));
  EXPECT_THROW(broker.CreateTopic("answers", 2), std::invalid_argument);
  EXPECT_THROW(broker.GetTopic("keys"), std::invalid_argument);
  broker.CreateTopic("keys", 2);
  const auto names = broker.TopicNames();
  EXPECT_EQ(names.size(), 2u);
}

TEST(BrokerTest, ProduceRoutesToTopic) {
  Broker broker;
  broker.CreateTopic("t", 1);
  broker.Produce("t", 7, {9}, 123);
  const auto records = broker.GetTopic("t").Read(0, 0, 10);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, 7u);
}

TEST(ConsumerTest, PollDrainsAllPartitions) {
  Broker broker;
  Topic& topic = broker.CreateTopic("t", 3);
  for (uint64_t key = 0; key < 100; ++key) {
    topic.Append(key, {static_cast<uint8_t>(key)}, 0);
  }
  Consumer consumer(topic);
  size_t total = 0;
  while (!consumer.CaughtUp()) {
    total += consumer.Poll(7).size();
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(consumer.consumed(), 100u);
  EXPECT_TRUE(consumer.Poll(10).empty());
}

TEST(ConsumerTest, ResumesFromOffsetAfterNewData) {
  Broker broker;
  Topic& topic = broker.CreateTopic("t", 1);
  topic.Append(0, {1}, 0);
  Consumer consumer(topic);
  EXPECT_EQ(consumer.Poll(10).size(), 1u);
  EXPECT_TRUE(consumer.CaughtUp());
  topic.Append(0, {2}, 0);
  EXPECT_FALSE(consumer.CaughtUp());
  const auto batch = consumer.Poll(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload[0], 2);
}

TEST(ConsumerTest, IndependentConsumersSeeAllData) {
  Broker broker;
  Topic& topic = broker.CreateTopic("t", 2);
  for (uint64_t key = 0; key < 50; ++key) {
    topic.Append(key, {0}, 0);
  }
  Consumer a(topic), b(topic);
  size_t count_a = 0, count_b = 0;
  while (!a.CaughtUp()) {
    count_a += a.Poll(8).size();
  }
  while (!b.CaughtUp()) {
    count_b += b.Poll(8).size();
  }
  EXPECT_EQ(count_a, 50u);
  EXPECT_EQ(count_b, 50u);
}

// ------------------------------------------------- slab-backed view paths

TEST(TopicTest, ReadViewsMatchesRead) {
  Topic topic("t", 2);
  for (uint64_t key = 0; key < 40; ++key) {
    topic.Append(key, Payload({static_cast<uint8_t>(key), 0xAB}),
                 static_cast<int64_t>(key));
  }
  for (size_t p = 0; p < 2; ++p) {
    const auto owned = topic.Read(p, 0, 100);
    std::vector<RecordView> views;
    topic.ReadViews(p, 0, 100, views);
    ASSERT_EQ(views.size(), owned.size());
    for (size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(views[i].offset, owned[i].offset);
      EXPECT_EQ(views[i].key, owned[i].key);
      EXPECT_EQ(views[i].timestamp_ms, owned[i].timestamp_ms);
      ASSERT_EQ(views[i].payload_len, owned[i].payload.size());
      EXPECT_TRUE(std::equal(owned[i].payload.begin(), owned[i].payload.end(),
                             views[i].payload));
    }
  }
}

TEST(TopicTest, ViewsStayValidAcrossLaterAppends) {
  // RecordViews point into append-only slabs that are never moved or freed,
  // so a view taken early must still read the same bytes after enough
  // appends to force many new slabs and index reallocations.
  Topic topic("t", 1);
  topic.Append(7, Payload({0xDE, 0xAD, 0xBE, 0xEF}), 1);
  std::vector<RecordView> early;
  topic.ReadViews(0, 0, 1, early);
  ASSERT_EQ(early.size(), 1u);
  const std::vector<uint8_t> big(100 * 1024, 0x55);  // ~half a slab chunk
  for (int i = 0; i < 50; ++i) {
    topic.Append(static_cast<uint64_t>(i), big, 2);
  }
  ASSERT_EQ(early[0].payload_len, 4u);
  EXPECT_EQ(early[0].payload[0], 0xDE);
  EXPECT_EQ(early[0].payload[3], 0xEF);
}

TEST(TopicTest, AppendViewsMatchesAppendBatch) {
  Topic owned_topic("owned", 4);
  Topic view_topic("views", 4);
  std::vector<ProduceRecord> records;
  std::vector<std::vector<uint8_t>> payloads;
  for (uint64_t key = 0; key < 200; ++key) {
    payloads.push_back(Payload({static_cast<uint8_t>(key),
                                static_cast<uint8_t>(key >> 1), 0x42}));
    records.push_back(
        ProduceRecord{key * 7919, payloads.back(), static_cast<int64_t>(key)});
  }
  std::vector<ProduceView> views;
  for (const auto& record : records) {
    views.push_back(
        ProduceView{record.key, record.payload, record.timestamp_ms});
  }
  owned_topic.AppendBatch(records);
  view_topic.AppendViews(views);
  for (size_t p = 0; p < 4; ++p) {
    const auto a = owned_topic.Read(p, 0, 1000);
    const auto b = view_topic.Read(p, 0, 1000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].key, b[i].key);
      EXPECT_EQ(a[i].timestamp_ms, b[i].timestamp_ms);
      EXPECT_EQ(a[i].payload, b[i].payload);
    }
  }
  EXPECT_EQ(owned_topic.metrics().records_in, view_topic.metrics().records_in);
  EXPECT_EQ(owned_topic.metrics().bytes_in, view_topic.metrics().bytes_in);
}

TEST(TopicTest, ReserveMakesAppendsAllocationFreeAndHarmless) {
  // Reserve is a capacity hint: appends within the budget must behave
  // exactly like unreserved appends, and over-reserving must not disturb
  // reads or offsets.
  Topic topic("t", 2);
  topic.Reserve(0, 100, 4096);
  topic.Reserve(1, 100, 4096);
  for (uint64_t key = 0; key < 50; ++key) {
    topic.Append(key, Payload({static_cast<uint8_t>(key)}), 0);
  }
  size_t total = 0;
  for (size_t p = 0; p < 2; ++p) {
    std::vector<RecordView> views;
    topic.ReadViews(p, 0, 100, views);
    total += views.size();
  }
  EXPECT_EQ(total, 50u);
  EXPECT_THROW(topic.Reserve(9, 1, 1), std::out_of_range);
}

TEST(TopicTest, PartitionForKeyMatchesTopicPartitionOf) {
  // The free function is part of the wire contract: a remote producer
  // computes shard counts without a Topic object, so it must agree with
  // the topic's own routing for every key.
  Topic topic("t", 4);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(PartitionForKey(key * 7919, 4), topic.PartitionOf(key * 7919));
  }
  EXPECT_EQ(PartitionForKey(123, 0), 0u);  // degenerate: clamps to 1
}

}  // namespace
}  // namespace privapprox::broker
