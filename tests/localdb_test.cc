// Tests for the client-local database: values, tables with time-ordered
// retention, the SQL subset parser, and the executor.

#include <gtest/gtest.h>

#include "localdb/database.h"
#include "localdb/executor.h"
#include "localdb/sql.h"

namespace privapprox::localdb {
namespace {

// --------------------------------------------------------------------- Value

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value(int64_t{5}).IsInt());
  EXPECT_TRUE(Value(5.0).IsDouble());
  EXPECT_TRUE(Value("x").IsString());
  EXPECT_TRUE(Value(int64_t{5}).IsNumeric());
  EXPECT_FALSE(Value("x").IsNumeric());
}

TEST(ValueTest, NumericCoercionInComparison) {
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(5.0)), 0);
  EXPECT_LT(Value(int64_t{4}).Compare(Value(4.5)), 0);
  EXPECT_GT(Value(9.1).Compare(Value(int64_t{9})), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, MixedTypeComparisonThrows) {
  EXPECT_THROW(Value("5").Compare(Value(int64_t{5})), std::invalid_argument);
}

TEST(ValueTest, AccessorsValidateType) {
  EXPECT_EQ(Value(3.9).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
  EXPECT_THROW(Value("s").AsDouble(), std::invalid_argument);
  EXPECT_THROW(Value(1.0).AsString(), std::invalid_argument);
}

// --------------------------------------------------------------------- Table

TEST(TableTest, InsertAndRange) {
  Table table("t", {"a", "b"});
  table.Insert(100, {Value(int64_t{1}), Value("x")});
  table.Insert(200, {Value(int64_t{2}), Value("y")});
  table.Insert(300, {Value(int64_t{3}), Value("z")});
  EXPECT_EQ(table.num_rows(), 3u);
  const auto rows = table.RowsInRange(150, 300);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->values[0].AsInt(), 2);
}

TEST(TableTest, EvictBeforeDropsOldRows) {
  Table table("t", {"a"});
  for (int64_t ts = 0; ts < 10; ++ts) {
    table.Insert(ts, {Value(ts)});
  }
  table.EvictBefore(7);
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_EQ(table.rows().front().timestamp_ms, 7);
}

TEST(TableTest, ValidatesConstruction) {
  EXPECT_THROW(Table("", {"a"}), std::invalid_argument);
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
  Table table("t", {"a"});
  EXPECT_THROW(table.Insert(0, {Value(int64_t{1}), Value(int64_t{2})}),
               std::invalid_argument);
}

TEST(TableTest, ColumnIndexLookup) {
  Table table("t", {"x", "y"});
  EXPECT_EQ(table.ColumnIndex("y").value(), 1u);
  EXPECT_FALSE(table.ColumnIndex("z").has_value());
}

// ----------------------------------------------------------------- SQL parse

TEST(SqlParserTest, SimpleSelect) {
  const SelectStatement stmt = ParseSql("SELECT speed FROM vehicle");
  EXPECT_EQ(stmt.column, "speed");
  EXPECT_EQ(stmt.table, "vehicle");
  EXPECT_EQ(stmt.aggregate, Aggregate::kNone);
  EXPECT_FALSE(stmt.has_where);
}

TEST(SqlParserTest, PaperExampleQuery) {
  const SelectStatement stmt = ParseSql(
      "SELECT speed FROM vehicle WHERE location='San Francisco'");
  EXPECT_TRUE(stmt.has_where);
  EXPECT_EQ(stmt.where.kind, Predicate::Kind::kComparison);
  EXPECT_EQ(stmt.where.column, "location");
  EXPECT_EQ(stmt.where.op, CompareOp::kEq);
  EXPECT_EQ(stmt.where.literal.AsString(), "San Francisco");
}

TEST(SqlParserTest, Aggregates) {
  EXPECT_EQ(ParseSql("SELECT SUM(kwh) FROM meter").aggregate, Aggregate::kSum);
  EXPECT_EQ(ParseSql("SELECT avg(x) FROM t").aggregate, Aggregate::kAvg);
  EXPECT_EQ(ParseSql("SELECT MIN(x) FROM t").aggregate, Aggregate::kMin);
  EXPECT_EQ(ParseSql("SELECT MAX(x) FROM t").aggregate, Aggregate::kMax);
  const SelectStatement count = ParseSql("SELECT COUNT(*) FROM t");
  EXPECT_EQ(count.aggregate, Aggregate::kCount);
  EXPECT_TRUE(count.count_star);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  EXPECT_NO_THROW(ParseSql("select a from t where b = 1"));
}

TEST(SqlParserTest, ColumnNamedLikeAggregate) {
  // "sum" without parentheses is a plain column name.
  const SelectStatement stmt = ParseSql("SELECT sum FROM t");
  EXPECT_EQ(stmt.aggregate, Aggregate::kNone);
  EXPECT_EQ(stmt.column, "sum");
}

TEST(SqlParserTest, AllComparisonOperators) {
  EXPECT_EQ(ParseSql("SELECT a FROM t WHERE a != 1").where.op, CompareOp::kNe);
  EXPECT_EQ(ParseSql("SELECT a FROM t WHERE a <> 1").where.op, CompareOp::kNe);
  EXPECT_EQ(ParseSql("SELECT a FROM t WHERE a < 1").where.op, CompareOp::kLt);
  EXPECT_EQ(ParseSql("SELECT a FROM t WHERE a <= 1").where.op, CompareOp::kLe);
  EXPECT_EQ(ParseSql("SELECT a FROM t WHERE a > 1").where.op, CompareOp::kGt);
  EXPECT_EQ(ParseSql("SELECT a FROM t WHERE a >= 1").where.op, CompareOp::kGe);
}

TEST(SqlParserTest, BooleanPrecedenceAndParens) {
  // AND binds tighter than OR.
  const SelectStatement stmt =
      ParseSql("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(stmt.where.kind, Predicate::Kind::kOr);
  ASSERT_EQ(stmt.where.children.size(), 2u);
  EXPECT_EQ(stmt.where.children[1].kind, Predicate::Kind::kAnd);
  const SelectStatement grouped =
      ParseSql("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  EXPECT_EQ(grouped.where.kind, Predicate::Kind::kAnd);
}

TEST(SqlParserTest, NumericLiterals) {
  const SelectStatement ints = ParseSql("SELECT a FROM t WHERE a = 42");
  EXPECT_TRUE(ints.where.literal.IsInt());
  const SelectStatement doubles = ParseSql("SELECT a FROM t WHERE a = 4.5");
  EXPECT_TRUE(doubles.where.literal.IsDouble());
  const SelectStatement negatives = ParseSql("SELECT a FROM t WHERE a > -3");
  EXPECT_EQ(negatives.where.literal.AsInt(), -3);
}

TEST(SqlParserTest, SyntaxErrorsThrow) {
  EXPECT_THROW(ParseSql(""), SqlError);
  EXPECT_THROW(ParseSql("SELEC a FROM t"), SqlError);
  EXPECT_THROW(ParseSql("SELECT FROM t"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE a ="), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE a = 'oops"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t trailing"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE a = 1 ;"), SqlError);
  EXPECT_THROW(ParseSql("SELECT SUM(a FROM t"), SqlError);
}

// ------------------------------------------------------------------ executor

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "rides", std::vector<std::string>{"distance", "borough"});
    table_->Insert(10, {Value(0.5), Value("manhattan")});
    table_->Insert(20, {Value(2.5), Value("brooklyn")});
    table_->Insert(30, {Value(7.0), Value("manhattan")});
    table_->Insert(40, {Value(12.0), Value("queens")});
  }
  std::unique_ptr<Table> table_;
};

TEST_F(ExecutorTest, SelectAllValues) {
  const auto values = ExecuteSelect(ParseSql("SELECT distance FROM rides"),
                                    *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values[0].AsDouble(), 0.5);
}

TEST_F(ExecutorTest, WhereFilters) {
  const auto values = ExecuteSelect(
      ParseSql("SELECT distance FROM rides WHERE borough = 'manhattan'"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[1].AsDouble(), 7.0);
}

TEST_F(ExecutorTest, TimeRangeFilters) {
  const auto values = ExecuteSelect(ParseSql("SELECT distance FROM rides"),
                                    *table_, 15, 35);
  ASSERT_EQ(values.size(), 2u);
}

TEST_F(ExecutorTest, CompoundPredicate) {
  const auto values = ExecuteSelect(
      ParseSql("SELECT distance FROM rides WHERE distance >= 2 AND "
               "distance < 10"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 2u);
}

TEST_F(ExecutorTest, OrPredicate) {
  const auto values = ExecuteSelect(
      ParseSql("SELECT distance FROM rides WHERE borough = 'queens' OR "
               "distance < 1"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 2u);
}

TEST_F(ExecutorTest, AggregateFunctions) {
  auto run = [&](const std::string& sql) {
    return ExecuteSelect(ParseSql(sql), *table_, INT64_MIN, INT64_MAX);
  };
  EXPECT_DOUBLE_EQ(run("SELECT SUM(distance) FROM rides")[0].AsDouble(), 22.0);
  EXPECT_DOUBLE_EQ(run("SELECT AVG(distance) FROM rides")[0].AsDouble(), 5.5);
  EXPECT_DOUBLE_EQ(run("SELECT MIN(distance) FROM rides")[0].AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(run("SELECT MAX(distance) FROM rides")[0].AsDouble(), 12.0);
  EXPECT_EQ(run("SELECT COUNT(*) FROM rides")[0].AsInt(), 4);
}

TEST_F(ExecutorTest, AggregateOverEmptySelection) {
  const auto sum = ExecuteSelect(
      ParseSql("SELECT SUM(distance) FROM rides WHERE distance > 100"),
      *table_, INT64_MIN, INT64_MAX);
  EXPECT_TRUE(sum.empty());
  const auto count = ExecuteSelect(
      ParseSql("SELECT COUNT(*) FROM rides WHERE distance > 100"), *table_,
      INT64_MIN, INT64_MAX);
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(count[0].AsInt(), 0);
}

TEST_F(ExecutorTest, UnknownColumnOrTableThrows) {
  EXPECT_THROW(ExecuteSelect(ParseSql("SELECT nope FROM rides"), *table_,
                             INT64_MIN, INT64_MAX),
               SqlError);
  EXPECT_THROW(ExecuteSelect(ParseSql("SELECT distance FROM nope"), *table_,
                             INT64_MIN, INT64_MAX),
               SqlError);
  EXPECT_THROW(
      ExecuteSelect(ParseSql("SELECT distance FROM rides WHERE ghost = 1"),
                    *table_, INT64_MIN, INT64_MAX),
      SqlError);
}

TEST_F(ExecutorTest, AggregateOverStringColumnThrows) {
  EXPECT_THROW(ExecuteSelect(ParseSql("SELECT SUM(borough) FROM rides"),
                             *table_, INT64_MIN, INT64_MAX),
               SqlError);
}

TEST(SqlParserTest, NotInBetween) {
  const SelectStatement negated =
      ParseSql("SELECT a FROM t WHERE NOT a = 1");
  EXPECT_EQ(negated.where.kind, Predicate::Kind::kNot);
  ASSERT_EQ(negated.where.children.size(), 1u);
  EXPECT_EQ(negated.where.children[0].kind, Predicate::Kind::kComparison);

  const SelectStatement in_list =
      ParseSql("SELECT a FROM t WHERE b IN ('x', 'y', 'z')");
  EXPECT_EQ(in_list.where.kind, Predicate::Kind::kIn);
  EXPECT_EQ(in_list.where.literal_set.size(), 3u);
  EXPECT_EQ(in_list.where.literal_set[1].AsString(), "y");

  const SelectStatement between =
      ParseSql("SELECT a FROM t WHERE c BETWEEN 2 AND 5");
  EXPECT_EQ(between.where.kind, Predicate::Kind::kBetween);
  EXPECT_EQ(between.where.between_lo.AsInt(), 2);
  EXPECT_EQ(between.where.between_hi.AsInt(), 5);
}

TEST(SqlParserTest, NotBindsTighterThanAnd) {
  const SelectStatement stmt =
      ParseSql("SELECT a FROM t WHERE NOT a = 1 AND b = 2");
  EXPECT_EQ(stmt.where.kind, Predicate::Kind::kAnd);
  EXPECT_EQ(stmt.where.children[0].kind, Predicate::Kind::kNot);
}

TEST(SqlParserTest, DoubleNegation) {
  const SelectStatement stmt =
      ParseSql("SELECT a FROM t WHERE NOT NOT a = 1");
  EXPECT_EQ(stmt.where.kind, Predicate::Kind::kNot);
  EXPECT_EQ(stmt.where.children[0].kind, Predicate::Kind::kNot);
}

TEST(SqlParserTest, MalformedExtensionsThrow) {
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE b IN ()"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE b IN (1,"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE c BETWEEN 1"), SqlError);
  EXPECT_THROW(ParseSql("SELECT a FROM t WHERE NOT"), SqlError);
}

TEST_F(ExecutorTest, NotPredicate) {
  const auto values = ExecuteSelect(
      ParseSql("SELECT distance FROM rides WHERE NOT borough = 'manhattan'"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 2u);
}

TEST_F(ExecutorTest, InPredicate) {
  const auto values = ExecuteSelect(
      ParseSql(
          "SELECT distance FROM rides WHERE borough IN ('queens', 'bronx')"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0].AsDouble(), 12.0);
}

TEST_F(ExecutorTest, BetweenPredicateIsInclusive) {
  const auto values = ExecuteSelect(
      ParseSql("SELECT distance FROM rides WHERE distance BETWEEN 2.5 AND 7"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 2u);  // 2.5 and 7.0, both endpoints included
}

TEST_F(ExecutorTest, CombinedExtensions) {
  const auto values = ExecuteSelect(
      ParseSql("SELECT distance FROM rides WHERE distance BETWEEN 0 AND 10 "
               "AND NOT borough IN ('brooklyn')"),
      *table_, INT64_MIN, INT64_MAX);
  ASSERT_EQ(values.size(), 2u);  // manhattan rides at 0.5 and 7.0
}

// ------------------------------------------------------------------ database

TEST(DatabaseTest, CreateAndQuery) {
  Database db;
  Table& table = db.CreateTable("meter", {"kwh"});
  table.Insert(0, {Value(1.5)});
  table.Insert(10, {Value(2.5)});
  const auto values = db.Execute("SELECT SUM(kwh) FROM meter");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0].AsDouble(), 4.0);
}

TEST(DatabaseTest, DuplicateTableThrows) {
  Database db;
  db.CreateTable("t", {"a"});
  EXPECT_THROW(db.CreateTable("t", {"b"}), std::invalid_argument);
}

TEST(DatabaseTest, UnknownTableThrows) {
  Database db;
  EXPECT_THROW(db.Execute("SELECT a FROM missing"), SqlError);
  EXPECT_THROW(db.GetTable("missing"), std::invalid_argument);
  EXPECT_FALSE(db.HasTable("missing"));
}

TEST(DatabaseTest, EvictBeforeAppliesToAllTables) {
  Database db;
  db.CreateTable("a", {"x"}).Insert(5, {Value(int64_t{1})});
  db.CreateTable("b", {"x"}).Insert(15, {Value(int64_t{1})});
  db.EvictBefore(10);
  EXPECT_EQ(db.GetTable("a").num_rows(), 0u);
  EXPECT_EQ(db.GetTable("b").num_rows(), 1u);
}

}  // namespace
}  // namespace privapprox::localdb
