// Tests for the simulated network: link serialization/latency accounting and
// the cluster scaling model used by Figs 6, 8, 9.

#include <gtest/gtest.h>

#include "net/link.h"
#include "net/topology.h"

namespace privapprox::net {
namespace {

TEST(LinkTest, TransferTimeIsLatencyPlusSerialization) {
  Link link(LinkConfig{1000.0, 2.0});  // 1000 B/ms, 2 ms latency
  const double arrival = link.Transfer(0.0, 5000);
  EXPECT_DOUBLE_EQ(arrival, 5.0 + 2.0);
  EXPECT_EQ(link.bytes_transferred(), 5000u);
}

TEST(LinkTest, BackToBackTransfersSerialize) {
  Link link(LinkConfig{1000.0, 1.0});
  const double first = link.Transfer(0.0, 1000);   // leaves at 1, arrives 2
  const double second = link.Transfer(0.0, 1000);  // must wait for the first
  EXPECT_DOUBLE_EQ(first, 2.0);
  EXPECT_DOUBLE_EQ(second, 3.0);
  EXPECT_EQ(link.transfers(), 2u);
}

TEST(LinkTest, IdleLinkStartsImmediately) {
  Link link(LinkConfig{1000.0, 1.0});
  link.Transfer(0.0, 1000);
  const double later = link.Transfer(10.0, 1000);  // link idle again
  EXPECT_DOUBLE_EQ(later, 12.0);
}

TEST(LinkTest, ResetClearsState) {
  Link link(LinkConfig{1000.0, 1.0});
  link.Transfer(0.0, 12345);
  link.Reset();
  EXPECT_EQ(link.bytes_transferred(), 0u);
  EXPECT_DOUBLE_EQ(link.busy_until_ms(), 0.0);
}

TEST(LinkTest, RejectsBadConfig) {
  EXPECT_THROW(Link(LinkConfig{0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Link(LinkConfig{1.0, -1.0}), std::invalid_argument);
}

TEST(ClusterTest, NodeRateScalesSubLinearlyWithCores) {
  ClusterConfig config;
  config.node.cores = 1;
  config.node.records_per_ms_per_core = 100.0;
  config.node.core_efficiency = 0.8;
  const double rate1 = Cluster(config).NodeRate();
  config.node.cores = 8;
  const double rate8 = Cluster(config).NodeRate();
  EXPECT_DOUBLE_EQ(rate1, 100.0);
  EXPECT_GT(rate8, 4.0 * rate1);  // clearly parallel
  EXPECT_LT(rate8, 8.0 * rate1);  // but sub-linear
}

TEST(ClusterTest, ThroughputImprovesWithNodes) {
  ClusterConfig config;
  config.num_nodes = 1;
  const double t1 = Cluster(config).ThroughputPerSec(1000000, 16.0);
  config.num_nodes = 8;
  const double t8 = Cluster(config).ThroughputPerSec(1000000, 16.0);
  EXPECT_GT(t8, 2.0 * t1);
  EXPECT_LT(t8, 8.0 * t1);  // coordination overhead keeps it sub-linear
}

TEST(ClusterTest, CompletionTimeGatedBySlowerOfComputeAndNetwork) {
  ClusterConfig config;
  config.num_nodes = 1;
  config.per_node_overhead_ms = 0.0;
  config.link.latency_ms = 0.0;
  config.node.cores = 1;
  config.node.records_per_ms_per_core = 1000.0;
  config.link.bandwidth_bytes_per_ms = 100.0;
  // 1000 records * 10B = 10000B -> 100ms network; compute = 1ms. Network
  // gates.
  EXPECT_NEAR(Cluster(config).CompletionTimeMs(1000, 10.0), 100.0, 1e-9);
  config.link.bandwidth_bytes_per_ms = 1e9;
  EXPECT_NEAR(Cluster(config).CompletionTimeMs(1000, 10.0), 1.0, 1e-9);
}

TEST(ClusterTest, ZeroRecordsIsFree) {
  EXPECT_DOUBLE_EQ(Cluster(ClusterConfig{}).CompletionTimeMs(0, 100.0), 0.0);
}

TEST(ClusterTest, RejectsBadConfig) {
  ClusterConfig config;
  config.num_nodes = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
  config.num_nodes = 1;
  config.node.cores = 0;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
  config.node.cores = 1;
  config.node.core_efficiency = 1.5;
  EXPECT_THROW(Cluster{config}, std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::net
