// Tests for the durable segmented answer log: CRC32 vectors, round-trips,
// segment rotation, time-range loads, torn-tail recovery, and corruption
// detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <atomic>

#include <unistd.h>

#include "storage/crc32.h"
#include "aggregator/historical.h"
#include "storage/segment_log.h"

namespace privapprox::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // ctest runs each TEST in its own process concurrently: the directory
    // name must be unique across processes, not just within one.
    static std::atomic<int> counter{0};
    std::random_device rd;
    path_ = fs::temp_directory_path() /
            ("privapprox_log_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + "_" + std::to_string(rd()));
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

BitVector MakeAnswer(size_t bits, size_t set_bit) {
  BitVector answer(bits);
  answer.Set(set_bit, true);
  return answer;
}

// ------------------------------------------------------------------ CRC32

TEST(Crc32Test, KnownVectors) {
  // Standard check value: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char data[] = "privacy-preserving stream analytics";
  const uint32_t whole = Crc32(data, sizeof(data) - 1);
  uint32_t incremental = Crc32(data, 10);
  incremental = Crc32Update(incremental, data + 10, sizeof(data) - 1 - 10);
  EXPECT_EQ(incremental, whole);
}

TEST(Crc32Test, DetectsBitFlips) {
  uint8_t buffer[64];
  for (size_t i = 0; i < sizeof(buffer); ++i) {
    buffer[i] = static_cast<uint8_t>(i * 7);
  }
  const uint32_t original = Crc32(buffer, sizeof(buffer));
  buffer[13] ^= 0x20;
  EXPECT_NE(Crc32(buffer, sizeof(buffer)), original);
}

// ------------------------------------------------------------- segment log

TEST(SegmentLogTest, AppendAndLoadRoundTrip) {
  TempDir dir;
  SegmentedAnswerLog log(dir.path());
  for (int64_t ts = 0; ts < 100; ++ts) {
    log.Append(ts, MakeAnswer(11, static_cast<size_t>(ts % 11)));
  }
  EXPECT_EQ(log.num_records(), 100u);
  const ResponseStore store = log.LoadRange(INT64_MIN, INT64_MAX);
  ASSERT_EQ(store.size(), 100u);
  const auto range = store.Range(0, 100);
  EXPECT_TRUE(range[42]->answer.Get(42 % 11));
  EXPECT_EQ(range[42]->answer.size(), 11u);
}

TEST(SegmentLogTest, TimeRangeFilter) {
  TempDir dir;
  SegmentedAnswerLog log(dir.path());
  for (int64_t ts = 0; ts < 50; ++ts) {
    log.Append(ts * 10, MakeAnswer(4, 0));
  }
  EXPECT_EQ(log.LoadRange(100, 200).size(), 10u);
  EXPECT_EQ(log.LoadRange(1000, 2000).size(), 0u);
}

TEST(SegmentLogTest, RotatesSegments) {
  TempDir dir;
  SegmentedAnswerLog::Options options;
  options.max_segment_bytes = 512;  // tiny: force rotation
  SegmentedAnswerLog log(dir.path(), options);
  for (int64_t ts = 0; ts < 200; ++ts) {
    log.Append(ts, MakeAnswer(64, 1));
  }
  EXPECT_GT(log.num_segments(), 3u);
  EXPECT_EQ(log.LoadRange(INT64_MIN, INT64_MAX).size(), 200u);
}

TEST(SegmentLogTest, ReopenResumesAppending) {
  TempDir dir;
  {
    SegmentedAnswerLog log(dir.path());
    for (int64_t ts = 0; ts < 30; ++ts) {
      log.Append(ts, MakeAnswer(8, 2));
    }
  }
  {
    SegmentedAnswerLog log(dir.path());
    EXPECT_EQ(log.num_records(), 30u);
    for (int64_t ts = 30; ts < 60; ++ts) {
      log.Append(ts, MakeAnswer(8, 2));
    }
    EXPECT_EQ(log.LoadRange(INT64_MIN, INT64_MAX).size(), 60u);
  }
}

TEST(SegmentLogTest, RecoversFromTornTail) {
  TempDir dir;
  fs::path segment;
  {
    SegmentedAnswerLog log(dir.path());
    for (int64_t ts = 0; ts < 10; ++ts) {
      log.Append(ts, MakeAnswer(16, 3));
    }
    segment = dir.path() / "answers-000000.log";
  }
  // Simulate a crash mid-append: chop the last 5 bytes.
  const auto size = fs::file_size(segment);
  fs::resize_file(segment, size - 5);
  SegmentedAnswerLog log(dir.path());
  EXPECT_EQ(log.num_records(), 9u);  // last record truncated away
  // And the log is writable again.
  log.Append(100, MakeAnswer(16, 3));
  EXPECT_EQ(log.LoadRange(INT64_MIN, INT64_MAX).size(), 10u);
}

TEST(SegmentLogTest, DetectsCorruptionInTornTailByCrc) {
  TempDir dir;
  fs::path segment;
  {
    SegmentedAnswerLog log(dir.path());
    for (int64_t ts = 0; ts < 5; ++ts) {
      log.Append(ts, MakeAnswer(16, 1));
    }
    segment = dir.path() / "answers-000000.log";
  }
  // Flip a byte inside the LAST record's body.
  {
    std::fstream f(segment,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);
    char byte;
    f.seekg(-3, std::ios::end);
    f.get(byte);
    f.seekp(-3, std::ios::end);
    byte = static_cast<char>(byte ^ 0xFF);
    f.put(byte);
  }
  SegmentedAnswerLog log(dir.path());
  EXPECT_EQ(log.num_records(), 4u);  // corrupt tail record dropped
}

TEST(SegmentLogTest, RejectsCorruptionInSealedSegment) {
  TempDir dir;
  {
    SegmentedAnswerLog::Options options;
    options.max_segment_bytes = 256;
    SegmentedAnswerLog log(dir.path(), options);
    for (int64_t ts = 0; ts < 100; ++ts) {
      log.Append(ts, MakeAnswer(64, 5));
    }
    ASSERT_GT(log.num_segments(), 1u);
  }
  // Corrupt the FIRST (sealed) segment: unrecoverable.
  {
    std::fstream f(dir.path() / "answers-000000.log",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    f.put('\xFF');
    f.put('\xFF');
  }
  EXPECT_THROW(SegmentedAnswerLog{dir.path()}, SegmentLogError);
}

TEST(SegmentLogTest, EmptyDirectoryIsValid) {
  TempDir dir;
  SegmentedAnswerLog log(dir.path());
  EXPECT_EQ(log.num_records(), 0u);
  EXPECT_EQ(log.LoadRange(INT64_MIN, INT64_MAX).size(), 0u);
}

TEST(SegmentLogTest, BatchAnalyticsOverLoadedStore) {
  // End-to-end: durable log -> LoadRange -> HistoricalAnalytics.
  TempDir dir;
  SegmentedAnswerLog log(dir.path());
  BitVector yes(2), no(2);
  yes.Set(0, true);
  no.Set(1, true);
  for (int i = 0; i < 70; ++i) {
    log.Append(i, yes);
  }
  for (int i = 70; i < 100; ++i) {
    log.Append(i, no);
  }
  const ResponseStore store = log.LoadRange(0, 100);
  core::ExecutionParams params;
  params.randomization = {1.0, 0.5};
  const aggregator::HistoricalAnalytics analytics(store, params, 100);
  Xoshiro256 rng(1);
  const core::QueryResult result =
      analytics.Run(0, 100, aggregator::BatchQueryBudget{1.0}, rng, 2);
  EXPECT_NEAR(result.buckets[0].estimate.value, 70.0, 1e-9);
  EXPECT_NEAR(result.buckets[1].estimate.value, 30.0, 1e-9);
}

}  // namespace
}  // namespace privapprox::storage
