// Tests for the full RAPPOR pipeline: Bloom encoding, memoized permanent
// randomized response, instantaneous randomized response, aggregate
// decoding, and the privacy accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/rappor_full.h"

namespace privapprox::baseline {
namespace {

RapporConfig DefaultConfig() {
  RapporConfig config;
  config.num_bits = 64;
  config.num_hashes = 2;
  config.f = 0.5;
  config.p_irr = 0.25;
  config.q_irr = 0.75;
  return config;
}

TEST(RapporConfigTest, Validation) {
  EXPECT_NO_THROW(DefaultConfig().Validate());
  RapporConfig bad = DefaultConfig();
  bad.num_hashes = 0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = DefaultConfig();
  bad.num_hashes = 100;  // > num_bits
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = DefaultConfig();
  bad.f = 1.0;
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
  bad = DefaultConfig();
  bad.p_irr = 0.8;  // p >= q
  EXPECT_THROW(bad.Validate(), std::invalid_argument);
}

TEST(RapporClientTest, BloomEncodingDeterministicAndSized) {
  RapporClient client(DefaultConfig(), 1);
  const BitVector a = client.BloomEncode("value_a");
  EXPECT_EQ(a, client.BloomEncode("value_a"));
  EXPECT_EQ(a.size(), 64u);
  EXPECT_LE(a.PopCount(), 2u);
  EXPECT_GE(a.PopCount(), 1u);  // hash collision can merge the two bits
}

TEST(RapporClientTest, DifferentValuesUsuallyDiffer) {
  RapporClient client(DefaultConfig(), 2);
  int distinct = 0;
  for (int i = 0; i < 50; ++i) {
    const BitVector a = client.BloomEncode("v" + std::to_string(i));
    const BitVector b = client.BloomEncode("v" + std::to_string(i + 1000));
    distinct += (a == b) ? 0 : 1;
  }
  EXPECT_GE(distinct, 48);
}

TEST(RapporClientTest, PermanentResponseIsMemoized) {
  // The longitudinal defense: reporting the same value twice must reuse the
  // identical PRR bits, or an observer could average the noise away.
  RapporClient client(DefaultConfig(), 3);
  const BitVector& first = client.PermanentFor("home_page");
  const BitVector& again = client.PermanentFor("home_page");
  EXPECT_EQ(first, again);
  EXPECT_EQ(client.memoized_values(), 1u);
  client.PermanentFor("other_page");
  EXPECT_EQ(client.memoized_values(), 2u);
}

TEST(RapporClientTest, ReportsVaryButPrrDoesNot) {
  RapporClient client(DefaultConfig(), 4);
  const BitVector r1 = client.Report("x");
  const BitVector r2 = client.Report("x");
  // IRR draws fresh noise per report: reports almost surely differ...
  EXPECT_NE(r1, r2);
  // ...while the underlying PRR stayed fixed.
  EXPECT_EQ(client.memoized_values(), 1u);
}

TEST(RapporClientTest, IrrRatesMatchConfig) {
  RapporConfig config = DefaultConfig();
  config.num_bits = 1;
  config.num_hashes = 1;
  config.f = 0.0001;  // essentially no PRR noise so PRR ~= Bloom
  RapporClient client(config, 5);
  // Value hashing to bit 0: the single bit is set.
  const BitVector bloom = client.BloomEncode("v");
  const bool bit_set = bloom.Get(0);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ones += client.Report("v").Get(0) ? 1 : 0;
  }
  const double expected = bit_set ? config.q_irr : config.p_irr;
  EXPECT_NEAR(static_cast<double>(ones) / n, expected, 0.02);
}

TEST(RapporDecodeTest, RecoversHotValueCount) {
  // 5000 clients all reporting the same value: the de-biased counts at the
  // value's Bloom bits should approach 5000, other bits approach 0.
  const RapporConfig config = DefaultConfig();
  const size_t clients = 5000;
  Histogram counts(config.num_bits);
  BitVector bloom(config.num_bits);
  {
    RapporClient reference(config, 0);
    bloom = reference.BloomEncode("popular");
  }
  for (size_t c = 0; c < clients; ++c) {
    RapporClient client(config, 100 + c);
    const BitVector report = client.Report("popular");
    for (size_t i = 0; i < config.num_bits; ++i) {
      if (report.Get(i)) {
        counts.Add(i);
      }
    }
  }
  const Histogram debiased =
      RapporDebias(config, counts, static_cast<double>(clients));
  // Per-bit de-bias noise: sd ~ sqrt(N * 0.24) / ((1-f)(q-p)) ~ 137; allow
  // ~4.5 sigma so the max over 64 bits stays within tolerance.
  for (size_t i = 0; i < config.num_bits; ++i) {
    if (bloom.Get(i)) {
      EXPECT_NEAR(debiased.Count(i), 5000.0, 620.0) << "bit " << i;
    } else {
      EXPECT_NEAR(debiased.Count(i), 0.0, 620.0) << "bit " << i;
    }
  }
}

TEST(RapporEpsilonTest, AccountingBehaves) {
  RapporConfig config = DefaultConfig();
  const double base = RapporEpsilonOneTime(config);
  EXPECT_GT(base, 0.0);
  // More hashes leak more.
  config.num_hashes = 4;
  EXPECT_NEAR(RapporEpsilonOneTime(config), 2.0 * base, 1e-9);
  // Stronger permanent noise (higher f) leaks less.
  config.num_hashes = 2;
  config.f = 0.9;
  EXPECT_LT(RapporEpsilonOneTime(config), base);
}

TEST(RapporEpsilonTest, DegenerateIrrApproachesPrrOnly) {
  // As q_irr -> 1 and p_irr -> 0 the IRR adds no deniability; epsilon is
  // dominated by the PRR. Compare against the simple one-time formula.
  RapporConfig config = DefaultConfig();
  config.p_irr = 1e-9;
  config.q_irr = 1.0 - 1e-9;
  config.num_hashes = 1;
  const double eps = RapporEpsilonOneTime(config);
  const double prr_only = 2.0 * std::log((1.0 - config.f / 2.0) /
                                         (config.f / 2.0));
  EXPECT_NEAR(eps, prr_only, 1e-3);
}

}  // namespace
}  // namespace privapprox::baseline
