// Tests for the generic durable partition log (storage/partition_log.h):
// framing round-trips, segment rotation and replay, fsync policy
// accounting, recovery invariants (torn tails, sealed-segment corruption,
// offset continuity), watermark retention, the directory lock, and a
// crash-point harness that truncates the log at every byte boundary of its
// final record.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "storage/partition_log.h"
#include "storage/segment_log.h"

namespace privapprox::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // ctest runs each TEST in its own process concurrently: the directory
    // name must be unique across processes, not just within one.
    static std::atomic<int> counter{0};
    std::random_device rd;
    path_ = fs::temp_directory_path() /
            ("privapprox_plog_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + "_" + std::to_string(rd()));
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<uint8_t> Payload(uint64_t seed, size_t len) {
  std::vector<uint8_t> payload(len);
  for (size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<uint8_t>((seed * 31 + i * 7) & 0xFF);
  }
  return payload;
}

struct ReplayedRecord {
  uint64_t offset;
  uint64_t key;
  int64_t timestamp_ms;
  std::vector<uint8_t> payload;
};

std::vector<ReplayedRecord> ReplayAll(const PartitionLog& log) {
  std::vector<ReplayedRecord> records;
  log.Replay([&](uint64_t offset, uint64_t key, int64_t timestamp_ms,
                 std::span<const uint8_t> payload) {
    records.push_back(ReplayedRecord{
        offset, key, timestamp_ms,
        std::vector<uint8_t>(payload.begin(), payload.end())});
  });
  return records;
}

// Small segments so a handful of appends spans several files. Each record
// is 24 bytes of framing plus its payload.
PartitionLogOptions SmallSegments(uint64_t max_bytes = 128) {
  PartitionLogOptions options;
  options.max_segment_bytes = max_bytes;
  return options;
}

size_t CountSegmentFiles(const fs::path& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("seg-") && name.ends_with(".log")) {
      ++n;
    }
  }
  return n;
}

// -------------------------------------------------------------- fsync API

TEST(FsyncPolicyTest, ParseAndNameRoundTrip) {
  for (const auto policy :
       {FsyncPolicy::kNever, FsyncPolicy::kOnRotate,
        FsyncPolicy::kEveryNRecords, FsyncPolicy::kAlways}) {
    EXPECT_EQ(ParseFsyncPolicy(FsyncPolicyName(policy)), policy);
  }
  EXPECT_THROW(ParseFsyncPolicy("sometimes"), SegmentLogError);
  EXPECT_THROW(ParseFsyncPolicy(""), SegmentLogError);
}

// ---------------------------------------------------------------- basics

TEST(PartitionLogTest, AppendAssignsSequentialOffsets) {
  TempDir dir;
  PartitionLog log(dir.path(), PartitionLogOptions{});
  EXPECT_EQ(log.base_offset(), 0u);
  EXPECT_EQ(log.end_offset(), 0u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(log.Append(i, static_cast<int64_t>(1000 + i),
                         Payload(i, 20)),
              i);
  }
  EXPECT_EQ(log.end_offset(), 10u);
  EXPECT_EQ(log.num_segments(), 1u);
  const PartitionLogStats stats = log.stats();
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.bytes, 10u * (24 + 20));
  EXPECT_EQ(stats.recovered_records, 0u);
  EXPECT_EQ(stats.truncated_tails, 0u);
}

TEST(PartitionLogTest, ReplayRoundTripAcrossSegments) {
  TempDir dir;
  PartitionLog log(dir.path(), SmallSegments());
  const size_t n = 20;
  for (uint64_t i = 0; i < n; ++i) {
    log.Append(i * 3, static_cast<int64_t>(i), Payload(i, 10 + i % 5));
  }
  ASSERT_GE(log.num_segments(), 3u) << "test needs multiple segments";

  const std::vector<ReplayedRecord> records = ReplayAll(log);
  ASSERT_EQ(records.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(records[i].offset, i);
    EXPECT_EQ(records[i].key, i * 3);
    EXPECT_EQ(records[i].timestamp_ms, static_cast<int64_t>(i));
    EXPECT_EQ(records[i].payload, Payload(i, 10 + i % 5));
  }
}

TEST(PartitionLogTest, ReopenRecoversAndContinuesOffsets) {
  TempDir dir;
  {
    PartitionLog log(dir.path(), SmallSegments());
    for (uint64_t i = 0; i < 12; ++i) {
      log.Append(i, 7, Payload(i, 16));
    }
  }
  PartitionLog log(dir.path(), SmallSegments());
  EXPECT_EQ(log.end_offset(), 12u);
  EXPECT_EQ(log.stats().recovered_records, 12u);
  EXPECT_EQ(log.stats().truncated_tails, 0u);
  // New appends continue the pre-crash numbering.
  EXPECT_EQ(log.Append(99, 7, Payload(99, 16)), 12u);
  const std::vector<ReplayedRecord> records = ReplayAll(log);
  ASSERT_EQ(records.size(), 13u);
  EXPECT_EQ(records.back().key, 99u);
}

// ------------------------------------------------------ recovery invariants

TEST(PartitionLogTest, TornTailInNewestSegmentIsTruncated) {
  TempDir dir;
  std::string newest;
  {
    PartitionLog log(dir.path(), PartitionLogOptions{});
    for (uint64_t i = 0; i < 5; ++i) {
      log.Append(i, 0, Payload(i, 32));
    }
    newest = "seg-00000000000000000000.log";
  }
  // Chop the last 10 bytes: the final record loses part of its body.
  const fs::path path = dir.path() / newest;
  fs::resize_file(path, fs::file_size(path) - 10);

  PartitionLog log(dir.path(), PartitionLogOptions{});
  EXPECT_EQ(log.end_offset(), 4u);
  EXPECT_EQ(log.stats().truncated_tails, 1u);
  EXPECT_EQ(log.stats().recovered_records, 4u);
  EXPECT_EQ(ReplayAll(log).size(), 4u);
  // The torn bytes are gone from disk, so a second open is clean.
  EXPECT_EQ(fs::file_size(path), 4u * (24 + 32));
}

TEST(PartitionLogTest, CorruptRecordInSealedSegmentThrows) {
  TempDir dir;
  {
    PartitionLog log(dir.path(), SmallSegments());
    for (uint64_t i = 0; i < 20; ++i) {
      log.Append(i, 0, Payload(i, 16));
    }
    ASSERT_GE(log.num_segments(), 2u);
  }
  // Flip one payload byte in the OLDEST segment — a sealed segment must
  // parse end to end, so recovery refuses rather than dropping history.
  const fs::path path = dir.path() / "seg-00000000000000000000.log";
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(30);
  file.put('\xFF');
  file.close();

  EXPECT_THROW(PartitionLog(dir.path(), SmallSegments()), SegmentLogError);
}

TEST(PartitionLogTest, TornTailInSealedSegmentThrows) {
  TempDir dir;
  std::string sealed;
  {
    PartitionLog log(dir.path(), SmallSegments());
    for (uint64_t i = 0; i < 20; ++i) {
      log.Append(i, 0, Payload(i, 16));
    }
    ASSERT_GE(log.num_segments(), 3u);
    sealed = "seg-00000000000000000000.log";
  }
  // A truncated non-newest segment is indistinguishable from lost history:
  // its record count no longer meets the next segment's base offset.
  const fs::path path = dir.path() / sealed;
  fs::resize_file(path, fs::file_size(path) - 5);

  EXPECT_THROW(PartitionLog(dir.path(), SmallSegments()), SegmentLogError);
}

TEST(PartitionLogTest, MissingMiddleSegmentThrows) {
  TempDir dir;
  std::vector<std::string> names;
  {
    PartitionLog log(dir.path(), SmallSegments());
    for (uint64_t i = 0; i < 20; ++i) {
      log.Append(i, 0, Payload(i, 16));
    }
    ASSERT_GE(log.num_segments(), 3u);
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("seg-")) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  fs::remove(dir.path() / names[1]);

  EXPECT_THROW(PartitionLog(dir.path(), SmallSegments()), SegmentLogError);
}

TEST(PartitionLogTest, EmptyActiveSegmentAfterRotationRecovers) {
  TempDir dir;
  uint64_t end = 0;
  {
    PartitionLog log(dir.path(), SmallSegments());
    for (uint64_t i = 0; i < 8; ++i) {
      log.Append(i, 0, Payload(i, 16));
    }
    end = log.end_offset();
  }
  // Simulate a crash between rotation's file creation and the first append
  // into it: an empty active segment whose base is the current end offset.
  char name[40];
  std::snprintf(name, sizeof(name), "seg-%020llu.log",
                static_cast<unsigned long long>(end));
  std::ofstream(dir.path() / name, std::ios::binary).flush();

  PartitionLog log(dir.path(), SmallSegments());
  EXPECT_EQ(log.end_offset(), end);
  EXPECT_EQ(log.stats().truncated_tails, 0u);
  EXPECT_EQ(log.Append(42, 0, Payload(42, 16)), end);
}

// Truncate the log at EVERY byte boundary of the final record: recovery
// must always succeed, keeping all full records and counting exactly one
// torn tail for any cut strictly inside the record.
TEST(PartitionLogTest, CrashPointHarnessEveryByteOfFinalRecord) {
  TempDir master;
  const size_t n = 6;
  const size_t payload_len = 24;
  const uint64_t record_bytes = 24 + payload_len;
  {
    PartitionLog log(master.path(), PartitionLogOptions{});
    for (uint64_t i = 0; i < n; ++i) {
      log.Append(i, static_cast<int64_t>(i), Payload(i, payload_len));
    }
  }
  const std::string name = "seg-00000000000000000000.log";
  const uint64_t file_size = fs::file_size(master.path() / name);
  ASSERT_EQ(file_size, n * record_bytes);
  const uint64_t last_start = file_size - record_bytes;

  for (uint64_t cut = last_start; cut <= file_size; ++cut) {
    TempDir scratch;
    fs::create_directories(scratch.path());
    fs::copy_file(master.path() / name, scratch.path() / name);
    fs::resize_file(scratch.path() / name, cut);

    PartitionLog log(scratch.path(), PartitionLogOptions{});
    if (cut == file_size) {
      EXPECT_EQ(log.end_offset(), n) << "cut=" << cut;
      EXPECT_EQ(log.stats().truncated_tails, 0u) << "cut=" << cut;
    } else {
      EXPECT_EQ(log.end_offset(), n - 1) << "cut=" << cut;
      EXPECT_EQ(log.stats().truncated_tails, cut == last_start ? 0u : 1u)
          << "cut=" << cut;
    }
    // Whatever survived must replay cleanly and accept new appends.
    const uint64_t next = log.end_offset();
    EXPECT_EQ(ReplayAll(log).size(), next);
    EXPECT_EQ(log.Append(77, 0, Payload(77, payload_len)), next);
  }
}

// ---------------------------------------------------------------- retention

TEST(PartitionLogTest, TrimBelowDeletesExactlyConsumedSegments) {
  TempDir dir;
  PartitionLog log(dir.path(), SmallSegments());
  for (uint64_t i = 0; i < 20; ++i) {
    log.Append(i, 0, Payload(i, 16));
  }
  ASSERT_GE(log.num_segments(), 3u);
  const size_t before = log.num_segments();

  // Watermark below the first segment's end: nothing is deletable.
  EXPECT_EQ(log.TrimBelow(1), 0u);
  EXPECT_EQ(log.num_segments(), before);

  // Watermark at 20 (everything consumed): every sealed segment goes, the
  // active segment survives even though it is fully consumed.
  const size_t removed = log.TrimBelow(20);
  EXPECT_EQ(removed, before - 1);
  EXPECT_EQ(log.num_segments(), 1u);
  EXPECT_GT(log.base_offset(), 0u);
  EXPECT_EQ(log.end_offset(), 20u);
  EXPECT_EQ(CountSegmentFiles(dir.path()), 1u);

  // Appends continue, and a reopen sees the trimmed base.
  EXPECT_EQ(log.Append(42, 0, Payload(42, 16)), 20u);
  const uint64_t base = log.base_offset();
  log.Sync();
  EXPECT_EQ(ReplayAll(log).front().offset, base);
}

TEST(PartitionLogTest, ReopenAfterTrimKeepsBaseOffset) {
  TempDir dir;
  uint64_t base = 0;
  {
    PartitionLog log(dir.path(), SmallSegments());
    for (uint64_t i = 0; i < 20; ++i) {
      log.Append(i, 0, Payload(i, 16));
    }
    log.TrimBelow(20);
    base = log.base_offset();
    ASSERT_GT(base, 0u);
  }
  PartitionLog log(dir.path(), SmallSegments());
  EXPECT_EQ(log.base_offset(), base);
  EXPECT_EQ(log.end_offset(), 20u);
  EXPECT_EQ(log.Append(1, 0, Payload(1, 16)), 20u);
}

// ------------------------------------------------------------ fsync policy

TEST(PartitionLogTest, FsyncAlwaysSyncsEveryAppend) {
  TempDir dir;
  PartitionLogOptions options;
  options.fsync = FsyncPolicy::kAlways;
  PartitionLog log(dir.path(), options);
  for (uint64_t i = 0; i < 5; ++i) {
    log.Append(i, 0, Payload(i, 16));
  }
  EXPECT_EQ(log.stats().fsyncs, 5u);
}

TEST(PartitionLogTest, FsyncEveryNSyncsInBatches) {
  TempDir dir;
  PartitionLogOptions options;
  options.fsync = FsyncPolicy::kEveryNRecords;
  options.fsync_every_n = 4;
  PartitionLog log(dir.path(), options);
  for (uint64_t i = 0; i < 10; ++i) {
    log.Append(i, 0, Payload(i, 16));
  }
  EXPECT_EQ(log.stats().fsyncs, 2u);  // after records 4 and 8
}

TEST(PartitionLogTest, FsyncNeverNeverSyncs) {
  TempDir dir;
  PartitionLog log(dir.path(), SmallSegments());
  for (uint64_t i = 0; i < 20; ++i) {
    log.Append(i, 0, Payload(i, 16));
  }
  EXPECT_EQ(log.stats().fsyncs, 0u);
  log.Sync();  // explicit sync works under any policy
  EXPECT_EQ(log.stats().fsyncs, 1u);
}

// ------------------------------------------------------------------ locking

TEST(PartitionLogTest, SecondOpenOfLiveDirectoryThrows) {
  TempDir dir;
  PartitionLog log(dir.path(), PartitionLogOptions{});
  EXPECT_THROW(PartitionLog(dir.path(), PartitionLogOptions{}),
               SegmentLogError);
  // The lock dies with the first instance.
  log.Append(1, 0, Payload(1, 16));
}

TEST(PartitionLogTest, LockReleasesWithInstance) {
  TempDir dir;
  { PartitionLog log(dir.path(), PartitionLogOptions{}); }
  PartitionLog log(dir.path(), PartitionLogOptions{});
  EXPECT_EQ(log.end_offset(), 0u);
}

TEST(DirLockTest, ExclusiveWithinProcess) {
  TempDir dir;
  fs::create_directories(dir.path());
  DirLock first;
  first.Acquire(dir.path(), "test");
  EXPECT_TRUE(first.held());
  DirLock second;
  EXPECT_THROW(second.Acquire(dir.path(), "test"), SegmentLogError);
  first.Release();
  second.Acquire(dir.path(), "test");
  EXPECT_TRUE(second.held());
}

// The historical answer log shares the directory lock: double-opening the
// same directory is a clear error, not interleaved segment writes.
TEST(SegmentedAnswerLogLockTest, DoubleOpenThrows) {
  TempDir dir;
  SegmentedAnswerLog first(dir.path());
  EXPECT_THROW(SegmentedAnswerLog(dir.path()), SegmentLogError);
}

}  // namespace
}  // namespace privapprox::storage
