// Tests for the analyst runtime: query identity stamping, budget
// submission, result consumption, and the closed feedback loop with live
// parameter redistribution (system::UpdateParams).

#include <gtest/gtest.h>

#include "analyst/analyst.h"
#include "core/privacy.h"

namespace privapprox::analyst {
namespace {

core::Query BuildSpeedQuery(Analyst& analyst) {
  return analyst.NewQuery()
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(5000)
      .WithWindowMs(5000)
      .WithSlideMs(5000)
      .Build();
}

void LoadClients(system::PrivApproxSystem& sys, double fresh_until_ms) {
  for (size_t i = 0; i < sys.num_clients(); ++i) {
    auto& db = sys.client(i).database();
    if (!db.HasTable("vehicle")) {
      db.CreateTable("vehicle", {"speed"});
    }
    for (int64_t ts = 0; ts < static_cast<int64_t>(fresh_until_ms);
         ts += 5000) {
      db.GetTable("vehicle").Insert(ts + 100, {localdb::Value(25.0)});
    }
  }
}

TEST(AnalystTest, QueryIdsEncodeAnalystAndSerial) {
  Analyst analyst(AnalystConfig{42, 0.05});
  const core::Query q1 = BuildSpeedQuery(analyst);
  const core::Query q2 = BuildSpeedQuery(analyst);
  EXPECT_EQ(q1.analyst_id, 42u);
  EXPECT_EQ(q1.query_id >> 32, 42u);
  EXPECT_EQ(q2.query_id, q1.query_id + 1);
  EXPECT_TRUE(q1.VerifySignature());
}

TEST(AnalystTest, RequiresSubmissionBeforeEpochs) {
  Analyst analyst(AnalystConfig{});
  system::SystemConfig config;
  config.num_clients = 2;
  system::PrivApproxSystem sys(config);
  EXPECT_THROW(analyst.RunEpoch(sys, 1000), std::logic_error);
  EXPECT_THROW(analyst.current_params(), std::logic_error);
}

TEST(AnalystTest, SubmitAndCollectResults) {
  Analyst analyst(AnalystConfig{7, 0.1});
  system::SystemConfig config;
  config.num_clients = 100;
  system::PrivApproxSystem sys(config);
  LoadClients(sys, 20000);
  const core::Query query = BuildSpeedQuery(analyst);
  core::QueryBudget budget;
  const core::ExecutionParams params =
      analyst.Submit(sys, query, budget, 0.5);
  EXPECT_DOUBLE_EQ(params.sampling_fraction, 1.0);
  // Answers at t=5000 land in window [5000, 10000); it fires once the
  // watermark passes 10000 on the next epoch.
  EXPECT_TRUE(analyst.RunEpoch(sys, 5000).empty());
  const auto results = analyst.RunEpoch(sys, 10000);
  ASSERT_GE(results.size(), 1u);
  EXPECT_EQ(results[0].result.participants, 100u);
}

TEST(AnalystTest, FeedbackLoopRaisesSamplingUnderError) {
  Analyst analyst(AnalystConfig{7, 0.001});  // very tight target
  system::SystemConfig config;
  config.num_clients = 200;
  system::PrivApproxSystem sys(config);
  LoadClients(sys, 60000);
  const core::Query query = BuildSpeedQuery(analyst);
  core::ExecutionParams initial;
  initial.sampling_fraction = 0.2;
  initial.randomization = {0.5, 0.5};
  // Submit with explicit params via the budget-free path: use Submit with a
  // budget that reproduces them. Simpler: submit, then force low s through
  // the feedback by giving a reference the noisy run cannot match.
  core::QueryBudget budget;
  budget.max_accuracy_loss = 0.001;  // unreachable at small populations
  analyst.Submit(sys, query, budget, 0.5);
  // Reference: everyone is in bucket 2 with count = population.
  analyst.set_reference([&](const engine::Window&) {
    Histogram reference(11);
    reference.SetCount(2, static_cast<double>(sys.num_clients()));
    return reference;
  });
  const double s_before = analyst.current_params().sampling_fraction;
  for (int64_t now = 5000; now <= 30000; now += 5000) {
    analyst.RunEpoch(sys, now);
  }
  EXPECT_FALSE(analyst.loss_history().empty());
  // The loop can only push s upward (or keep it at the cap).
  EXPECT_GE(analyst.current_params().sampling_fraction, s_before);
}

TEST(AnalystTest, UpdateParamsReachesClients) {
  // Direct check of the redistribution path used by the feedback loop.
  system::SystemConfig config;
  config.num_clients = 50;
  config.seed = 77;
  system::PrivApproxSystem sys(config);
  LoadClients(sys, 10000);
  Analyst analyst(AnalystConfig{3, 0.05});
  const core::Query query = BuildSpeedQuery(analyst);
  core::QueryBudget budget;
  analyst.Submit(sys, query, budget, 0.5);

  core::ExecutionParams retuned;
  retuned.sampling_fraction = 0.3;
  retuned.randomization = {0.9, 0.6};
  sys.UpdateParams(retuned);
  // Clients now sample at 0.3: participation drops accordingly.
  const system::EpochStats stats = sys.RunEpoch(5000);
  EXPECT_LT(stats.participants, 30u);
  EXPECT_GT(stats.participants, 4u);
}

TEST(AnalystTest, UpdateParamsWithoutQueryThrows) {
  system::SystemConfig config;
  config.num_clients = 2;
  system::PrivApproxSystem sys(config);
  core::ExecutionParams params;
  EXPECT_THROW(sys.UpdateParams(params), std::logic_error);
}

}  // namespace
}  // namespace privapprox::analyst
