// Tests for the metrics subsystem (src/metrics/): instruments, the
// registry's exposition formats, histogram percentile accuracy against a
// sorted reference, concurrent updates from many threads (run under
// -DPRIVAPPROX_SANITIZE=thread to check the lock-free contract), and the
// chrome://tracing timeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "metrics/timeline.h"

namespace privapprox::metrics {
namespace {

// ------------------------------------------------------------- instruments

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(5);  // below current: no-op
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(100);
  EXPECT_EQ(g.Value(), 100);
}

TEST(HistogramTest, BucketIndexIsMonotoneAndBoundsAreConsistent) {
  // Every value must land in a bucket whose bounds contain it, and larger
  // values must never land in smaller buckets.
  size_t prev_index = 0;
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 15ull, 16ull, 100ull,
                     1000ull, 123456ull, 1ull << 40, ~0ull >> 1}) {
    const size_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, prev_index) << "v=" << v;
    prev_index = index;
    EXPECT_LT(v, Histogram::BucketUpperBound(index)) << "v=" << v;
    if (index > 0) {
      EXPECT_GE(v, Histogram::BucketUpperBound(index - 1)) << "v=" << v;
    }
  }
}

TEST(HistogramTest, PercentileTracksSortedReferenceWithin12Percent) {
  // The histogram's quantile estimate must stay within the documented
  // 1/kSubBuckets (12.5%) relative error of the exact sorted-sample
  // quantile, across a skewed latency-like distribution.
  Histogram hist;
  std::vector<uint64_t> samples;
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> latency(10.0, 1.5);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(latency(rng));
    samples.push_back(v);
    hist.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.95, 0.99}) {
    // Same rank convention as the implementation: the rank-th smallest
    // sample, 1-indexed, rank = floor(q * N) clamped to [1, N].
    const size_t rank = std::clamp<size_t>(
        static_cast<size_t>(q * static_cast<double>(samples.size())), 1,
        samples.size());
    const double exact = static_cast<double>(samples[rank - 1]);
    const double est = hist.Percentile(q);
    // Estimate reports the bucket's inclusive upper bound: never below the
    // exact sample, and at most one sub-bucket (12.5%) above it.
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, exact * 1.125 + 1.0) << "q=" << q;
  }
  EXPECT_EQ(hist.Count(), 20000u);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram hist;
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0u);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, GetReturnsSameInstrumentForSameNameAndLabels) {
  Registry reg;
  Counter& a = reg.GetCounter("requests_total", "Requests.");
  Counter& b = reg.GetCounter("requests_total", "Requests.");
  EXPECT_EQ(&a, &b);
  Counter& labeled = reg.GetCounter("requests_total", "Requests.",
                                    {{"proxy", "0"}});
  EXPECT_NE(&a, &labeled);
}

TEST(RegistryTest, TypeMismatchThrows) {
  Registry reg;
  reg.GetCounter("x_total", "X.");
  EXPECT_THROW(reg.GetGauge("x_total", "X."), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("x_total", "X."), std::logic_error);
}

TEST(RegistryTest, TextExpositionGolden) {
  // Pin the exact exposition byte-for-byte: deterministic family order
  // (sorted by name), label rendering, HELP/TYPE comments, and the summary
  // form for histograms.
  Registry reg;
  reg.GetCounter("pa_shares_total", "Shares seen.").Increment(7);
  reg.GetCounter("pa_shares_total", "Shares seen.", {{"proxy", "1"}})
      .Increment(3);
  reg.GetGauge("pa_depth", "Channel depth.").Set(5);
  Histogram& h = reg.GetHistogram("pa_latency_ns", "Latency.");
  h.Observe(4);
  h.Observe(4);
  const std::string expected =
      "# HELP pa_depth Channel depth.\n"
      "# TYPE pa_depth gauge\n"
      "pa_depth 5\n"
      "# HELP pa_latency_ns Latency.\n"
      "# TYPE pa_latency_ns summary\n"
      "pa_latency_ns{quantile=\"0.5\"} 4\n"
      "pa_latency_ns{quantile=\"0.95\"} 4\n"
      "pa_latency_ns{quantile=\"0.99\"} 4\n"
      "pa_latency_ns_sum 8\n"
      "pa_latency_ns_count 2\n"
      "# HELP pa_shares_total Shares seen.\n"
      "# TYPE pa_shares_total counter\n"
      "pa_shares_total 7\n"
      "pa_shares_total{proxy=\"1\"} 3\n";
  EXPECT_EQ(reg.RenderText(), expected);
}

TEST(RegistryTest, JsonSnapshotContainsAllSections) {
  Registry reg;
  reg.GetCounter("c_total", "C.").Increment(2);
  reg.GetGauge("g", "G.").Set(-4);
  reg.GetHistogram("h_ns", "H.").Observe(100);
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"h_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(RegistryTest, CollectorRunsOnRender) {
  Registry reg;
  Gauge& g = reg.GetGauge("pulled", "Pulled by collector.");
  int pulls = 0;
  reg.AddCollector([&] {
    ++pulls;
    g.Set(123);
  });
  const std::string text = reg.RenderText();
  EXPECT_EQ(pulls, 1);
  EXPECT_NE(text.find("pulled 123"), std::string::npos);
  reg.RenderJson();
  EXPECT_EQ(pulls, 2);
}

TEST(RegistryTest, CollectorMayTouchRegistryWithoutDeadlock) {
  // Collectors run outside the registry mutex, so a collector that itself
  // calls GetGauge must not deadlock.
  Registry reg;
  reg.AddCollector(
      [&] { reg.GetGauge("late", "Registered by collector.").Set(1); });
  EXPECT_NE(reg.RenderText().find("late 1"), std::string::npos);
}

TEST(RegistryTest, ConcurrentUpdatesAndRendersAreClean) {
  // Hammer one counter/histogram from many threads while another thread
  // renders; total counts must be exact and TSan (CI job) must stay quiet.
  Registry reg;
  Counter& c = reg.GetCounter("hammer_total", "Hammered.");
  Histogram& h = reg.GetHistogram("hammer_ns", "Hammered.");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(static_cast<uint64_t>(t * kPerThread + i));
        if (i % 4096 == 0) {
          // Late registration from a worker: exercises the registry mutex
          // against concurrent renders.
          reg.GetCounter("hammer_total", "Hammered.",
                         {{"thread", std::to_string(t)}})
              .Increment();
        }
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      reg.RenderText();
      reg.RenderJson();
    }
  });
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------- timeline

TEST(TimelineTest, DisabledRecordsNothing) {
  EpochTimeline timeline;
  {
    EpochTimeline::Span span(timeline, "work");
  }
  EXPECT_EQ(timeline.size(), 0u);
}

TEST(TimelineTest, EnabledSpansAppearInChromeTracingJson) {
  EpochTimeline timeline;
  timeline.set_enabled(true);
  {
    EpochTimeline::Span outer(timeline, "epoch");
    EpochTimeline::Span inner(timeline, "answer_shard");
  }
  ASSERT_EQ(timeline.size(), 2u);  // inner destructs (records) first
  const std::string json = timeline.ToChromeTracingJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"answer_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  timeline.Clear();
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_NE(timeline.ToChromeTracingJson().find("\"traceEvents\":[]"),
            std::string::npos);
}

TEST(TimelineTest, ConcurrentSpansRecordEveryEvent) {
  EpochTimeline timeline;
  timeline.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        EpochTimeline::Span span(timeline, "shard");
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(timeline.size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace privapprox::metrics
