// The transport layer minus sockets: frame codec edges, the wire protocol
// dispatch, BusConsumer semantics (including the promised-count error
// paths), the InProcessBus facade with its link accounting, and topic
// routing. Socket-level behavior lives in tcp_bus_test.cc.

#include <gtest/gtest.h>

#include <bit>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "deploy/result_wire.h"
#include "net/link.h"
#include "storage/crc32.h"
#include "transport/frame.h"
#include "transport/inproc_bus.h"
#include "transport/message_bus.h"
#include "transport/wire.h"

namespace privapprox::transport {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

broker::ProduceView View(const std::vector<uint8_t>& payload, uint64_t key,
                         int64_t ts = 0) {
  return broker::ProduceView{key, payload, ts};
}

TEST(FrameTest, RoundTrip) {
  const std::vector<uint8_t> payload = Bytes("hello frame");
  std::vector<uint8_t> encoded;
  EncodeFrame(payload, encoded);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + payload.size());
  const FrameDecodeResult result = TryDecodeFrame(encoded);
  ASSERT_EQ(result.status, FrameStatus::kFrame);
  EXPECT_EQ(result.consumed, encoded.size());
  EXPECT_EQ(std::vector<uint8_t>(result.payload.begin(), result.payload.end()),
            payload);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  std::vector<uint8_t> encoded;
  EncodeFrame({}, encoded);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes);
  const FrameDecodeResult result = TryDecodeFrame(encoded);
  ASSERT_EQ(result.status, FrameStatus::kFrame);
  EXPECT_EQ(result.payload.size(), 0u);
}

TEST(FrameTest, TruncatedHeaderNeedsMore) {
  std::vector<uint8_t> encoded;
  EncodeFrame(Bytes("x"), encoded);
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    const FrameDecodeResult result =
        TryDecodeFrame(std::span<const uint8_t>(encoded.data(), len));
    EXPECT_EQ(result.status, FrameStatus::kNeedMore) << "prefix " << len;
  }
}

TEST(FrameTest, TruncatedPayloadNeedsMore) {
  std::vector<uint8_t> encoded;
  EncodeFrame(Bytes("truncate me"), encoded);
  for (size_t len = kFrameHeaderBytes; len < encoded.size(); ++len) {
    const FrameDecodeResult result =
        TryDecodeFrame(std::span<const uint8_t>(encoded.data(), len));
    EXPECT_EQ(result.status, FrameStatus::kNeedMore) << "prefix " << len;
  }
}

TEST(FrameTest, CrcMismatchIsProtocolError) {
  std::vector<uint8_t> encoded;
  EncodeFrame(Bytes("guarded payload"), encoded);
  encoded.back() ^= 0x01;  // flip one payload bit
  EXPECT_EQ(TryDecodeFrame(encoded).status, FrameStatus::kCrcMismatch);
}

TEST(FrameTest, FlippedLengthShowsUpAsErrorNotHang) {
  std::vector<uint8_t> encoded;
  EncodeFrame(Bytes("abcdef"), encoded);
  // Corrupt the length prefix downward: the CRC now covers the wrong bytes.
  encoded[0] = 2;
  const FrameDecodeResult result = TryDecodeFrame(encoded);
  EXPECT_EQ(result.status, FrameStatus::kCrcMismatch);
}

TEST(FrameTest, MaxLengthFrameDecodes) {
  // The cap bounds the payload length: exactly max_frame_bytes of payload
  // is still a valid frame.
  const size_t max_frame = 4096;
  const std::vector<uint8_t> payload(max_frame, 0xAB);
  std::vector<uint8_t> encoded;
  EncodeFrame(payload, encoded);
  const FrameDecodeResult result = TryDecodeFrame(encoded, max_frame);
  ASSERT_EQ(result.status, FrameStatus::kFrame);
  EXPECT_EQ(result.payload.size(), payload.size());
}

TEST(FrameTest, OversizedLengthIsQuarantined) {
  const size_t max_frame = 4096;
  const std::vector<uint8_t> payload(max_frame + 1, 0xCD);  // one byte over
  std::vector<uint8_t> encoded;
  EncodeFrame(payload, encoded);
  EXPECT_EQ(TryDecodeFrame(encoded, max_frame).status, FrameStatus::kTooLarge);
}

TEST(FrameTest, BackToBackFramesDecodeInOrder) {
  std::vector<uint8_t> buffer;
  EncodeFrame(Bytes("first"), buffer);
  EncodeFrame(Bytes("second"), buffer);
  const FrameDecodeResult first = TryDecodeFrame(buffer);
  ASSERT_EQ(first.status, FrameStatus::kFrame);
  EXPECT_EQ(std::string(first.payload.begin(), first.payload.end()), "first");
  buffer.erase(buffer.begin(),
               buffer.begin() + static_cast<ptrdiff_t>(first.consumed));
  const FrameDecodeResult second = TryDecodeFrame(buffer);
  ASSERT_EQ(second.status, FrameStatus::kFrame);
  EXPECT_EQ(std::string(second.payload.begin(), second.payload.end()),
            "second");
}

// --- Wire protocol: request bytes -> HandleRequest -> response bytes ---

class WireProtocolTest : public ::testing::Test {
 protected:
  // Runs one request through the pure dispatcher and strips the status byte.
  WireReader Call(const std::vector<uint8_t>& request) {
    HandleRequest(broker_, control_, request, response_);
    WireReader reader(response_);
    const uint8_t status = reader.TakeU8();
    if (status != kWireOk) {
      throw std::runtime_error("wire error: " + reader.TakeString());
    }
    return reader;
  }

  broker::Broker broker_;
  ControlHandler control_;
  std::vector<uint8_t> response_;
};

TEST_F(WireProtocolTest, EnsureProduceAndPollRoundTrip) {
  std::vector<uint8_t> request;
  BuildEnsureTopicRequest("t", 2, request);
  Call(request);

  const std::vector<uint8_t> a = Bytes("aa"), b = Bytes("bbb");
  const std::vector<broker::ProduceView> records = {View(a, 1, 10),
                                                    View(b, 2, 20)};
  request.clear();
  BuildProduceRequest("t", records, request);
  WireReader produce_reply = Call(request);
  EXPECT_EQ(produce_reply.TakeU32(), 2u);

  // Both records landed in the partitions the shared hash names.
  size_t found = 0;
  for (size_t p = 0; p < 2; ++p) {
    request.clear();
    BuildPollRequest("t", p, 0, 16, 1 << 20, request);
    WireReader reply = Call(request);
    const uint32_t count = reply.TakeU32();
    for (uint32_t i = 0; i < count; ++i) {
      reply.TakeU64();  // offset
      const uint64_t key = reply.TakeU64();
      const int64_t ts = static_cast<int64_t>(reply.TakeU64());
      const auto payload = reply.TakeBytes();
      if (key == 1) {
        EXPECT_EQ(ts, 10);
        EXPECT_EQ(payload.size(), 2u);
        EXPECT_EQ(PartitionForKey(1, 2), p);
      } else {
        EXPECT_EQ(key, 2u);
        EXPECT_EQ(ts, 20);
        EXPECT_EQ(payload.size(), 3u);
        EXPECT_EQ(PartitionForKey(2, 2), p);
      }
      ++found;
    }
  }
  EXPECT_EQ(found, 2u);
}

TEST_F(WireProtocolTest, PollIsByteBudgetedButAlwaysMakesProgress) {
  std::vector<uint8_t> request;
  BuildEnsureTopicRequest("t", 1, request);
  Call(request);
  const std::vector<uint8_t> big(1000, 0x55);
  const std::vector<broker::ProduceView> records = {View(big, 0), View(big, 0),
                                                    View(big, 0)};
  request.clear();
  BuildProduceRequest("t", records, request);
  Call(request);

  // Budget below one record: exactly one is packed anyway.
  request.clear();
  BuildPollRequest("t", 0, 0, 16, /*max_bytes=*/10, request);
  WireReader tight = Call(request);
  EXPECT_EQ(tight.TakeU32(), 1u);

  // Budget for two records: the third is deferred to the next round-trip.
  request.clear();
  BuildPollRequest("t", 0, 0, 16, /*max_bytes=*/2000, request);
  WireReader two = Call(request);
  EXPECT_EQ(two.TakeU32(), 2u);
}

TEST_F(WireProtocolTest, ErrorsComeBackAsWireErrors) {
  std::vector<uint8_t> request;
  BuildTopicMetaRequest("missing", request);
  EXPECT_THROW(Call(request), std::runtime_error);

  request.clear();
  request.push_back(0xEE);  // unknown opcode
  EXPECT_THROW(Call(request), std::runtime_error);

  // Control verb without a registered handler.
  request.clear();
  BuildControlRequest("ping", {}, request);
  EXPECT_THROW(Call(request), std::runtime_error);
}

TEST_F(WireProtocolTest, ControlVerbDispatches) {
  control_ = [](const std::string& verb, std::span<const uint8_t> payload) {
    std::vector<uint8_t> reply;
    PutString(verb + "/" + std::to_string(payload.size()), reply);
    return reply;
  };
  std::vector<uint8_t> request;
  const std::vector<uint8_t> payload = Bytes("abc");
  BuildControlRequest("echo", payload, request);
  WireReader reply = Call(request);
  WireReader body(reply.TakeBytes());
  EXPECT_EQ(body.TakeString(), "echo/3");
}

// --- BusConsumer over the in-process backend ---

class BusConsumerTest : public ::testing::Test {
 protected:
  BusConsumerTest() : bus_(broker_) { bus_.EnsureTopic("t", 2); }

  void Produce(uint64_t key, const std::string& payload) {
    const std::vector<uint8_t> bytes = Bytes(payload);
    const broker::ProduceView view{key, bytes, 0};
    bus_.Produce("t", std::span<const broker::ProduceView>(&view, 1));
  }

  broker::Broker broker_;
  InProcessBus bus_;
};

TEST_F(BusConsumerTest, PollIntoDrainsAllPartitions) {
  for (uint64_t key = 0; key < 20; ++key) {
    Produce(key, "r" + std::to_string(key));
  }
  BusConsumer consumer(bus_, "t");
  EXPECT_EQ(consumer.num_partitions(), 2u);
  std::vector<broker::RecordView> out;
  size_t total = 0;
  while (size_t n = consumer.PollInto(7, out)) {
    total += n;
  }
  EXPECT_EQ(total, 20u);
  EXPECT_EQ(consumer.consumed(), 20u);
  EXPECT_TRUE(consumer.CaughtUp());
}

TEST_F(BusConsumerTest, PollExactIntoHonorsPromisedCounts) {
  // Promise exactly what was appended per partition, then append more and
  // verify the read stopped at the promise.
  std::vector<uint32_t> counts(2, 0);
  for (uint64_t key = 0; key < 10; ++key) {
    Produce(key, "first");
    ++counts[PartitionForKey(key, 2)];
  }
  for (uint64_t key = 10; key < 16; ++key) {
    Produce(key, "second");
  }
  BusConsumer consumer(bus_, "t");
  std::vector<broker::RecordView> out;
  EXPECT_EQ(consumer.PollExactInto(counts, out), 10u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_FALSE(consumer.CaughtUp());
}

TEST_F(BusConsumerTest, PollExactIntoRejectsWrongPartitionCount) {
  BusConsumer consumer(bus_, "t");
  std::vector<broker::RecordView> out;
  const std::vector<uint32_t> wrong(3, 0);
  try {
    consumer.PollExactInto(wrong, out);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the consumer surface, not the deleted broker one.
    EXPECT_NE(std::string(e.what()).find("BusConsumer::PollExactInto"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("partition count mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(BusConsumerTest, PollExactIntoThrowsWhenPromiseNotAvailable) {
  Produce(0, "only one");
  BusConsumer consumer(bus_, "t");
  std::vector<broker::RecordView> out;
  std::vector<uint32_t> counts(2, 0);
  counts[PartitionForKey(0, 2)] = 2;  // promise more than exists
  try {
    consumer.PollExactInto(counts, out);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("promised"), std::string::npos)
        << e.what();
  }
}

TEST(InProcessBusTest, EnsureTopicMismatchThrows) {
  broker::Broker broker;
  InProcessBus bus(broker);
  bus.EnsureTopic("t", 2);
  bus.EnsureTopic("t", 2);  // attach is fine
  EXPECT_THROW(bus.EnsureTopic("t", 3), std::invalid_argument);
}

TEST(InProcessBusTest, LinkModelAccountsEveryPayloadByte) {
  broker::Broker broker;
  net::LinkConfig link;
  link.bandwidth_bytes_per_ms = 1000.0;
  link.latency_ms = 1.0;
  InProcessBus bus(broker, link);
  bus.EnsureTopic("t", 1);
  EXPECT_EQ(bus.simulated_transfer_ns(), 0u);

  const std::vector<uint8_t> payload(500, 0x77);
  const broker::ProduceView view{0, payload, 0};
  bus.Produce("t", std::span<const broker::ProduceView>(&view, 1));
  const uint64_t after_produce = bus.simulated_transfer_ns();
  // latency 1ms + 500B / 1000B-per-ms = 1.5ms.
  EXPECT_EQ(after_produce, 1500000u);

  std::vector<broker::RecordView> out;
  ASSERT_EQ(bus.Poll("t", 0, 0, 16, out), 1u);
  EXPECT_EQ(bus.simulated_transfer_ns(), 2 * after_produce);
}

TEST(TopicRouterBusTest, RoutesByLongestPrefix) {
  broker::Broker broker_a, broker_b;
  InProcessBus bus_a(broker_a), bus_b(broker_b);
  TopicRouterBus router;
  router.AddRoute("proxy0.", bus_a);
  router.AddRoute("proxy0.q7.", bus_b);  // longer prefix wins for q7 lanes

  router.EnsureTopic("proxy0.out", 1);
  router.EnsureTopic("proxy0.q7.out", 1);
  const std::vector<uint8_t> payload = Bytes("x");
  const broker::ProduceView view{0, payload, 0};
  router.Produce("proxy0.out", std::span<const broker::ProduceView>(&view, 1));
  router.Produce("proxy0.q7.out",
                 std::span<const broker::ProduceView>(&view, 1));

  // Each record landed only on its routed backend.
  EXPECT_EQ(bus_a.EndOffset("proxy0.out", 0), 1u);
  EXPECT_EQ(bus_b.EndOffset("proxy0.q7.out", 0), 1u);
  EXPECT_THROW(broker_a.GetTopic("proxy0.q7.out"), std::invalid_argument);
  EXPECT_THROW(broker_b.GetTopic("proxy0.out"), std::invalid_argument);

  // Reads route the same way.
  std::vector<broker::RecordView> out;
  EXPECT_EQ(router.Poll("proxy0.q7.out", 0, 0, 16, out), 1u);
  EXPECT_EQ(router.NumPartitions("proxy0.out"), 1u);
  EXPECT_THROW(router.Produce("unrouted.topic", {}), std::invalid_argument);
}

TEST(PartitionForKeyTest, ZeroPartitionsClampsToZero) {
  EXPECT_EQ(PartitionForKey(123, 0), 0u);
}

// --- result_wire: the serialization the socket e2e comparison rides on ---

TEST(ResultWireTest, RoundTripsEveryFieldBitExactly) {
  aggregator::WindowedResult result;
  result.query_id = 42;
  result.window = engine::Window{1000, 2000};
  result.result.participants = 17;
  result.result.population = 600;
  result.result.lost_to_faults = 3;
  result.result.confidence = 0.95;
  result.result.sampling_fraction = 0.3125;  // exact in binary
  core::BucketEstimate bucket;
  bucket.estimate.value = 123.4567890123;
  bucket.estimate.error = 0.1 + 0.2;  // a value with messy low bits
  bucket.estimate.confidence = 0.99;
  bucket.estimate.sample_size = 550;
  bucket.randomized_count = 275.25;
  result.result.buckets = {bucket, bucket};

  const std::vector<uint8_t> wire =
      deploy::SerializeResults(std::vector<aggregator::WindowedResult>{result});
  const std::vector<aggregator::WindowedResult> back =
      deploy::DeserializeResults(wire);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].query_id, 42u);
  EXPECT_EQ(back[0].window, (engine::Window{1000, 2000}));
  EXPECT_EQ(back[0].result.participants, 17u);
  EXPECT_EQ(back[0].result.lost_to_faults, 3u);
  ASSERT_EQ(back[0].result.buckets.size(), 2u);
  // Bit-exact double round-trip, not approximate.
  EXPECT_EQ(std::bit_cast<uint64_t>(back[0].result.buckets[0].estimate.error),
            std::bit_cast<uint64_t>(bucket.estimate.error));
  EXPECT_EQ(back[0].result.buckets[1].estimate.value, bucket.estimate.value);
  // Re-serialization is byte-stable (the comparison CI relies on this).
  EXPECT_EQ(deploy::SerializeResults(back), wire);

  // Trailing garbage is rejected.
  std::vector<uint8_t> trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(deploy::DeserializeResults(trailing), std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::transport
