// Unit + property tests for the arbitrary-precision substrate.

#include <gtest/gtest.h>

#include "bignum/biguint.h"
#include "bignum/modular.h"
#include "bignum/prime.h"
#include "common/rng.h"

namespace privapprox::bignum {
namespace {

TEST(BigUintTest, ZeroProperties) {
  const BigUint zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(zero.IsEven());
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero.ToDecimal(), "0");
  EXPECT_EQ(zero.ToHex(), "0");
  EXPECT_EQ(zero, BigUint::Zero());
}

TEST(BigUintTest, SmallArithmetic) {
  const BigUint a(1000), b(37);
  EXPECT_EQ((a + b).Low64(), 1037u);
  EXPECT_EQ((a - b).Low64(), 963u);
  EXPECT_EQ((a * b).Low64(), 37000u);
  EXPECT_EQ((a / b).Low64(), 27u);
  EXPECT_EQ((a % b).Low64(), 1u);
}

TEST(BigUintTest, DecimalRoundTrip) {
  const std::string decimal =
      "123456789012345678901234567890123456789012345678901234567890";
  const BigUint x = BigUint::FromDecimal(decimal);
  EXPECT_EQ(x.ToDecimal(), decimal);
}

TEST(BigUintTest, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  const BigUint x = BigUint::FromHex(hex);
  EXPECT_EQ(x.ToHex(), hex);
  EXPECT_EQ(BigUint::FromHex("0xFF").Low64(), 255u);
}

TEST(BigUintTest, ParseErrors) {
  EXPECT_THROW(BigUint::FromHex(""), std::invalid_argument);
  EXPECT_THROW(BigUint::FromHex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigUint::FromDecimal(""), std::invalid_argument);
  EXPECT_THROW(BigUint::FromDecimal("12a"), std::invalid_argument);
}

TEST(BigUintTest, KnownBigProduct) {
  const BigUint a = BigUint::FromDecimal("123456789012345678901234567890");
  const BigUint b = BigUint::FromDecimal("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToDecimal(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigUintTest, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), std::underflow_error);
}

TEST(BigUintTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigUint(1) / BigUint::Zero(), std::domain_error);
  EXPECT_THROW(BigUint(1) % BigUint::Zero(), std::domain_error);
}

TEST(BigUintTest, ShiftRoundTrip) {
  const BigUint x = BigUint::FromHex("123456789abcdef0123456789abcdef");
  for (size_t shift : {1u, 13u, 64u, 65u, 130u}) {
    EXPECT_EQ((x << shift) >> shift, x) << "shift=" << shift;
  }
  EXPECT_TRUE((BigUint(1) >> 1).IsZero());
}

TEST(BigUintTest, CompareOrdering) {
  const BigUint small(5), big = BigUint::FromHex("ffffffffffffffffff");
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_LE(small, small);
  EXPECT_EQ(small.Compare(small), 0);
}

TEST(BigUintTest, BitAccess) {
  BigUint x;
  x.SetBit(100, true);
  EXPECT_TRUE(x.GetBit(100));
  EXPECT_FALSE(x.GetBit(99));
  EXPECT_EQ(x.BitLength(), 101u);
  x.SetBit(100, false);
  EXPECT_TRUE(x.IsZero());
}

// Property: a = (a/b)*b + (a%b) and a%b < b, over random operands.
TEST(BigUintProperty, DivModIdentity) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t abits = 16 + rng.NextBounded(512);
    const size_t bbits = 8 + rng.NextBounded(256);
    const BigUint a = BigUint::RandomBits(rng, abits);
    const BigUint b = BigUint::RandomBits(rng, bbits);
    const auto dm = a.DivMod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

// Property: (a + b) - b == a; distributivity a*(b+c) == a*b + a*c.
TEST(BigUintProperty, AlgebraicIdentities) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const BigUint a = BigUint::RandomBits(rng, 8 + rng.NextBounded(300));
    const BigUint b = BigUint::RandomBits(rng, 8 + rng.NextBounded(300));
    const BigUint c = BigUint::RandomBits(rng, 8 + rng.NextBounded(300));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

// Property: Karatsuba (large operands) agrees with schoolbook (reachable
// via small chunks): verify big products against the divide-and-recombine
// identity and a growing set of random sizes straddling the threshold.
TEST(BigUintProperty, KaratsubaMatchesSchoolbookAcrossThreshold) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    // Sizes from well below to well above the 32-limb Karatsuba threshold.
    const size_t abits = 512 + rng.NextBounded(6144);
    const size_t bbits = 512 + rng.NextBounded(6144);
    const BigUint a = BigUint::RandomBits(rng, abits);
    const BigUint b = BigUint::RandomBits(rng, bbits);
    const BigUint product = a * b;
    // Cross-check with an independent decomposition: a*b =
    // (a_hi*2^k + a_lo)*b computed via shifts and smaller products.
    const size_t k = abits / 2;
    const BigUint a_lo = a % (BigUint::One() << k);
    const BigUint a_hi = a >> k;
    EXPECT_EQ(product, ((a_hi * b) << k) + a_lo * b);
    // And the divmod identity must hold for the product.
    EXPECT_EQ(product % a, BigUint::Zero());
    EXPECT_EQ(product / a, b);
  }
}

TEST(BigUintProperty, KaratsubaAsymmetricOperands) {
  Xoshiro256 rng(101);
  // One huge, one tiny operand exercises the empty-high-half split path.
  const BigUint huge = BigUint::RandomBits(rng, 8192);
  const BigUint tiny(12345);
  EXPECT_EQ(huge * tiny, tiny * huge);
  EXPECT_EQ((huge * tiny) / tiny, huge);
  // Squaring a large value.
  const BigUint square = huge * huge;
  EXPECT_EQ(square / huge, huge);
}

TEST(BigUintTest, RandomBitsHasExactBitLength) {
  Xoshiro256 rng(3);
  for (size_t bits : {2u, 63u, 64u, 65u, 512u, 1024u}) {
    EXPECT_EQ(BigUint::RandomBits(rng, bits).BitLength(), bits);
  }
}

TEST(BigUintTest, RandomBelowIsBelow) {
  Xoshiro256 rng(4);
  const BigUint bound = BigUint::FromDecimal("1000000000000000000000");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigUint::RandomBelow(rng, bound), bound);
  }
  EXPECT_THROW(BigUint::RandomBelow(rng, BigUint::Zero()),
               std::invalid_argument);
}

// ----------------------------------------------------------------- modular

TEST(ModularTest, GcdKnownValues) {
  EXPECT_EQ(Gcd(BigUint(48), BigUint(18)).Low64(), 6u);
  EXPECT_EQ(Gcd(BigUint(17), BigUint(13)).Low64(), 1u);
  EXPECT_EQ(Gcd(BigUint(0), BigUint(5)).Low64(), 5u);
}

TEST(ModularTest, ModInverseProperty) {
  Xoshiro256 rng(5);
  int tested = 0;
  while (tested < 100) {
    const BigUint m = BigUint::RandomBits(rng, 128);
    const BigUint a = BigUint::RandomBelow(rng, m);
    if (a.IsZero() || Gcd(a, m) != BigUint::One()) {
      continue;
    }
    const auto inv = ModInverse(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(ModMul(a, *inv, m), BigUint::One());
    ++tested;
  }
}

TEST(ModularTest, ModInverseOfNonCoprimeIsNull) {
  EXPECT_FALSE(ModInverse(BigUint(6), BigUint(9)).has_value());
  EXPECT_EQ(ModInverse(BigUint(5), BigUint::One()).value(), BigUint::Zero());
}

TEST(ModularTest, ModExpKnownValues) {
  // 2^10 = 1024; 1024 mod 1000 = 24.
  EXPECT_EQ(ModExp(BigUint(2), BigUint(10), BigUint(1000)).Low64(), 24u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(ModExp(BigUint(7), BigUint(1000000006), BigUint(1000000007)),
            BigUint::One());
  EXPECT_EQ(ModExp(BigUint(2), BigUint(1000), BigUint(1000000007)).Low64(),
            688423210u);
}

TEST(ModularTest, ModExpEdgeCases) {
  EXPECT_EQ(ModExp(BigUint(5), BigUint::Zero(), BigUint(7)), BigUint::One());
  EXPECT_EQ(ModExp(BigUint::Zero(), BigUint(5), BigUint(7)), BigUint::Zero());
  EXPECT_TRUE(ModExp(BigUint(5), BigUint(3), BigUint::One()).IsZero());
  EXPECT_THROW(ModExp(BigUint(2), BigUint(3), BigUint::Zero()),
               std::domain_error);
}

// Property: Montgomery path (odd modulus) agrees with naive square-multiply.
TEST(ModularProperty, MontgomeryMatchesNaive) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    BigUint m = BigUint::RandomBits(rng, 64 + rng.NextBounded(200));
    m.SetBit(0, true);  // odd
    const BigUint base = BigUint::RandomBelow(rng, m);
    const BigUint exp = BigUint::RandomBits(rng, 48);
    const BigUint fast = ModExp(base, exp, m);
    BigUint slow = BigUint::One();
    for (size_t i = exp.BitLength(); i > 0; --i) {
      slow = (slow * slow) % m;
      if (exp.GetBit(i - 1)) {
        slow = (slow * base) % m;
      }
    }
    EXPECT_EQ(fast, slow);
  }
}

TEST(ModularTest, MontgomeryContextRoundTrip) {
  Xoshiro256 rng(7);
  BigUint m = BigUint::RandomBits(rng, 256);
  m.SetBit(0, true);
  const MontgomeryContext ctx(m);
  for (int i = 0; i < 50; ++i) {
    const BigUint x = BigUint::RandomBelow(rng, m);
    EXPECT_EQ(ctx.FromMontgomery(ctx.ToMontgomery(x)), x);
  }
}

TEST(ModularTest, MontgomeryRejectsEvenModulus) {
  EXPECT_THROW(MontgomeryContext(BigUint(10)), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigUint::One()), std::invalid_argument);
}

TEST(ModularTest, JacobiKnownValues) {
  // (1/n) = 1 always.
  EXPECT_EQ(Jacobi(BigUint(1), BigUint(9)), 1);
  // Quadratic residues mod 7: 1, 2, 4.
  EXPECT_EQ(Jacobi(BigUint(2), BigUint(7)), 1);
  EXPECT_EQ(Jacobi(BigUint(3), BigUint(7)), -1);
  EXPECT_EQ(Jacobi(BigUint(4), BigUint(7)), 1);
  // Shared factor -> 0.
  EXPECT_EQ(Jacobi(BigUint(6), BigUint(9)), 0);
  EXPECT_THROW(Jacobi(BigUint(3), BigUint(8)), std::invalid_argument);
}

TEST(ModularTest, JacobiMatchesEulerForPrimes) {
  // For odd prime p, Jacobi == Legendre == a^((p-1)/2) mod p mapped to +-1.
  Xoshiro256 rng(8);
  const BigUint p(1000003);  // prime
  const BigUint exponent = (p - BigUint::One()) >> 1;
  for (int i = 0; i < 50; ++i) {
    const BigUint a = BigUint::RandomBelow(rng, p);
    if (a.IsZero()) {
      continue;
    }
    const BigUint euler = ModExp(a, exponent, p);
    const int expected = euler == BigUint::One() ? 1 : -1;
    EXPECT_EQ(Jacobi(a, p), expected);
  }
}

// ------------------------------------------------------------------- prime

TEST(PrimeTest, SmallPrimesRecognized) {
  Xoshiro256 rng(9);
  for (uint64_t p : {2u, 3u, 5u, 7u, 11u, 97u, 251u, 257u, 65537u}) {
    EXPECT_TRUE(IsProbablePrime(BigUint(p), rng)) << p;
  }
  for (uint64_t c : {0u, 1u, 4u, 9u, 91u, 561u, 65536u}) {
    EXPECT_FALSE(IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(PrimeTest, CarmichaelNumbersRejected) {
  Xoshiro256 rng(10);
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  for (uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 6601u}) {
    EXPECT_FALSE(IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(PrimeTest, KnownLargePrime) {
  Xoshiro256 rng(11);
  // 2^89 - 1 is a Mersenne prime.
  const BigUint mersenne89 = (BigUint::One() << 89) - BigUint::One();
  EXPECT_TRUE(IsProbablePrime(mersenne89, rng));
  // 2^67 - 1 is famously composite.
  const BigUint mersenne67 = (BigUint::One() << 67) - BigUint::One();
  EXPECT_FALSE(IsProbablePrime(mersenne67, rng));
}

TEST(PrimeTest, RandomPrimeHasRequestedSize) {
  Xoshiro256 rng(12);
  const BigUint p = RandomPrime(rng, 128);
  EXPECT_EQ(p.BitLength(), 128u);
  EXPECT_TRUE(IsProbablePrime(p, rng));
}

TEST(PrimeTest, BlumPrimeIsThreeModFour) {
  Xoshiro256 rng(13);
  const BigUint p = RandomBlumPrime(rng, 96);
  EXPECT_EQ(p.Low64() & 3, 3u);
  EXPECT_TRUE(IsProbablePrime(p, rng));
}

TEST(PrimeTest, RejectsTinyRequests) {
  Xoshiro256 rng(14);
  EXPECT_THROW(RandomPrime(rng, 1), std::invalid_argument);
  EXPECT_THROW(RandomBlumPrime(rng, 2), std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::bignum
