// Tests for the durable-spill layer above the partition log: Topic recovery
// into in-memory slabs, Broker-wide RecoverTopics, watermark retention from
// the broker's side, double-open protection, and the end-to-end guarantee
// that a durability-enabled PrivApproxSystem produces bit-identical results
// to a memory-only one.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "broker/broker.h"
#include "broker/topic.h"
#include "core/query.h"
#include "deploy/result_wire.h"
#include "localdb/database.h"
#include "storage/partition_log.h"
#include "system/system.h"

namespace privapprox {
namespace {

namespace fs = std::filesystem;

using broker::Broker;
using broker::BrokerDurability;
using broker::Record;
using broker::Topic;
using broker::TopicDurability;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    std::random_device rd;
    path_ = fs::temp_directory_path() /
            ("privapprox_durable_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++) + "_" + std::to_string(rd()));
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<uint8_t> Payload(uint64_t seed, size_t len) {
  std::vector<uint8_t> payload(len);
  for (size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<uint8_t>((seed * 131 + i) & 0xFF);
  }
  return payload;
}

// Copy-read every record of every partition, in partition order.
std::vector<Record> DumpTopic(const Topic& topic) {
  std::vector<Record> all;
  for (size_t p = 0; p < topic.num_partitions(); ++p) {
    // Durable recovery can leave a non-zero base after retention trims;
    // read from the first offset the topic still holds.
    std::vector<Record> records =
        topic.Read(p, /*offset=*/0, /*max_records=*/1 << 20);
    all.insert(all.end(), records.begin(), records.end());
  }
  return all;
}

TEST(DurableTopicTest, OffByDefault) {
  Topic topic("plain", 4);
  EXPECT_FALSE(topic.durable());
  const auto stats = topic.durable_stats();
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // Watermark/sync are no-ops, not errors.
  EXPECT_EQ(topic.AdvanceWatermark(0, 100), 0u);
  topic.SyncDurable();
}

TEST(DurableTopicTest, ReopenRecoversIdenticalContents) {
  TempDir dir;
  const TopicDurability durability{dir.path(), {}};
  std::vector<Record> written;
  {
    Topic topic("answers", 4, durability);
    ASSERT_TRUE(topic.durable());
    for (uint64_t key = 0; key < 40; ++key) {
      topic.Append(key, Payload(key, 20 + key % 7),
                   static_cast<int64_t>(1000 + key));
    }
    written = DumpTopic(topic);
    ASSERT_EQ(written.size(), 40u);
    EXPECT_GT(topic.durable_stats().bytes, 0u);
  }

  Topic topic("answers", 4, durability);
  const std::vector<Record> recovered = DumpTopic(topic);
  ASSERT_EQ(recovered.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(recovered[i].offset, written[i].offset);
    EXPECT_EQ(recovered[i].key, written[i].key);
    EXPECT_EQ(recovered[i].timestamp_ms, written[i].timestamp_ms);
    EXPECT_EQ(recovered[i].payload, written[i].payload);
  }
  EXPECT_EQ(topic.durable_stats().recovered_records, 40u);

  // The recovered topic keeps accepting appends.
  topic.Append(99, Payload(99, 8), 0);
  EXPECT_EQ(DumpTopic(topic).size(), 41u);
}

TEST(DurableTopicTest, EndOffsetContinuesAcrossReopen) {
  TempDir dir;
  const TopicDurability durability{dir.path(), {}};
  std::vector<uint64_t> ends;
  {
    Topic topic("t", 3, durability);
    for (uint64_t key = 0; key < 30; ++key) {
      topic.Append(key, Payload(key, 16), 0);
    }
    for (size_t p = 0; p < 3; ++p) {
      ends.push_back(topic.EndOffset(p));
    }
  }
  Topic topic("t", 3, durability);
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(topic.EndOffset(p), ends[p]) << "partition " << p;
  }
}

TEST(DurableTopicTest, DoubleOpenOfSameDirectoryThrows) {
  TempDir dir;
  const TopicDurability durability{dir.path(), {}};
  Topic topic("t", 2, durability);
  EXPECT_THROW(Topic("t", 2, durability), storage::SegmentLogError);
}

TEST(DurableTopicTest, WatermarkTrimsDiskKeepsMemory) {
  TempDir dir;
  TopicDurability durability{dir.path(), {}};
  durability.log.max_segment_bytes = 256;  // force rotation quickly
  const size_t kOnePartition = 1;

  uint64_t end = 0;
  {
    Topic topic("t", kOnePartition, durability);
    for (uint64_t key = 0; key < 30; ++key) {
      topic.Append(key, Payload(key, 40), 0);
    }
    end = topic.EndOffset(0);
    ASSERT_GT(topic.durable_stats().segments, 2u);

    // Consumers are fully caught up: trimming deletes every sealed segment
    // but the in-memory records stay readable (RecordView lifetime).
    EXPECT_GT(topic.AdvanceWatermark(0, end), 0u);
    EXPECT_EQ(topic.durable_stats().segments, 1u);
    EXPECT_EQ(DumpTopic(topic).size(), 30u);

    // A watermark past the end clamps rather than corrupting state.
    EXPECT_EQ(topic.AdvanceWatermark(0, end + 1000), 0u);
  }

  // Reopen: only the untrimmed tail comes back, at the right offsets.
  Topic topic("t", kOnePartition, durability);
  EXPECT_EQ(topic.EndOffset(0), end);
  const std::vector<Record> tail = DumpTopic(topic);
  ASSERT_FALSE(tail.empty());
  EXPECT_LT(tail.size(), 30u);
  EXPECT_EQ(tail.back().offset, end - 1);
  for (const Record& r : tail) {
    EXPECT_EQ(r.payload, Payload(r.key, 40));
  }
}

// ----------------------------------------------------------------- broker

TEST(DurableBrokerTest, EnableAfterTopicExistsThrows) {
  TempDir dir;
  Broker broker;
  broker.CreateTopic("t", 1);
  EXPECT_THROW(broker.EnableDurability({dir.path(), {}}), std::logic_error);
}

TEST(DurableBrokerTest, RecoverTopicsWithoutDurabilityThrows) {
  Broker broker;
  EXPECT_THROW(broker.RecoverTopics(), std::logic_error);
}

TEST(DurableBrokerTest, RecoverTopicsRebuildsNamesAndPartitions) {
  TempDir dir;
  {
    Broker broker;
    broker.EnableDurability({dir.path(), {}});
    EXPECT_TRUE(broker.durable());
    // Dotted names matter: lane topics look like proxy0.q7.in.
    Topic& a = broker.CreateTopic("proxy0.q7.in", 4);
    Topic& b = broker.CreateTopic("proxy0.q7.out", 2);
    Topic& c = broker.CreateTopic("announce", 1);
    for (uint64_t key = 0; key < 24; ++key) {
      a.Append(key, Payload(key, 12), 0);
      b.Append(key, Payload(key + 100, 12), 0);
    }
    c.Append(0, Payload(7, 64), 0);
  }

  Broker broker;
  broker.EnableDurability({dir.path(), {}});
  const std::vector<std::string> recovered = broker.RecoverTopics();
  EXPECT_EQ(recovered, (std::vector<std::string>{"announce", "proxy0.q7.in",
                                                 "proxy0.q7.out"}));
  EXPECT_EQ(broker.GetTopic("proxy0.q7.in").num_partitions(), 4u);
  EXPECT_EQ(broker.GetTopic("proxy0.q7.out").num_partitions(), 2u);
  EXPECT_EQ(broker.GetTopic("announce").num_partitions(), 1u);
  EXPECT_EQ(DumpTopic(broker.GetTopic("proxy0.q7.in")).size(), 24u);
  EXPECT_EQ(DumpTopic(broker.GetTopic("announce")).size(), 1u);
  EXPECT_EQ(broker.durable_stats().recovered_records, 49u);

  // Recovering again is a no-op: the topics already exist.
  EXPECT_TRUE(broker.RecoverTopics().empty());
}

TEST(DurableBrokerTest, RecoverOnEmptyDirIsEmpty) {
  TempDir dir;
  Broker broker;
  broker.EnableDurability({dir.path(), {}});
  EXPECT_TRUE(broker.RecoverTopics().empty());
}

// ----------------------------------------------------------------- system

core::Query SpeedQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(1000)
      .WithSlideMs(1000)
      .Build();
}

core::ExecutionParams Params() {
  core::ExecutionParams params;
  params.sampling_fraction = 0.9;
  params.randomization = {0.85, 0.5};
  return params;
}

void FillDatabase(localdb::Database& db, size_t client_index) {
  db.CreateTable("vehicle", {"speed"});
  db.GetTable("vehicle").Insert(
      500,
      {localdb::Value(static_cast<double>((client_index * 7) % 100))});
}

std::vector<uint8_t> RunSystem(const system::SystemConfig& config) {
  system::PrivApproxSystem sys(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    FillDatabase(sys.client(i).database(), i);
  }
  sys.SubmitQuery(SpeedQuery(), Params());
  for (size_t e = 0; e < 3; ++e) {
    sys.RunEpoch(static_cast<int64_t>(1000 * (e + 1)));
  }
  sys.Flush();
  return deploy::SerializeResults(sys.TakeResults());
}

// Durability OFF vs ON must be bit-identical: the spill is write-through,
// never on the read path, so every sampled/randomized bit matches.
TEST(DurableSystemTest, DurableResultsMatchMemoryOnly) {
  system::SystemConfig memory_config;
  memory_config.num_clients = 60;
  memory_config.num_proxies = 2;
  memory_config.seed = 42;
  const std::vector<uint8_t> reference = RunSystem(memory_config);
  ASSERT_FALSE(reference.empty());

  TempDir dir;
  system::SystemConfig durable_config = memory_config;
  durable_config.broker.data_dir = dir.path().string();
  const std::vector<uint8_t> durable = RunSystem(durable_config);
  EXPECT_EQ(durable, reference);

  // And the spill actually happened.
  EXPECT_FALSE(fs::is_empty(dir.path()));
}

TEST(DurableSystemTest, DurableSystemHonorsFsyncPolicy) {
  TempDir dir;
  system::SystemConfig config;
  config.num_clients = 20;
  config.num_proxies = 2;
  config.seed = 7;
  config.broker.data_dir = dir.path().string();
  config.broker.log.fsync = storage::FsyncPolicy::kAlways;
  const std::vector<uint8_t> wire = RunSystem(config);
  EXPECT_FALSE(wire.empty());
}

}  // namespace
}  // namespace privapprox
