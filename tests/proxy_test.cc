// Tests for the proxy runtime: share encode/decode, transmission-only
// forwarding, and the parallel forwarding path.

#include <gtest/gtest.h>

#include "broker/broker.h"
#include "proxy/proxy.h"

namespace privapprox::proxy {
namespace {

TEST(ProxyTest, CreatesItsTopics) {
  broker::Broker b;
  Proxy proxy(ProxyConfig{0, 2}, b);
  EXPECT_TRUE(b.HasTopic("proxy0.in"));
  EXPECT_TRUE(b.HasTopic("proxy0.out"));
  EXPECT_EQ(proxy.index(), 0u);
}

TEST(ProxyTest, ShareEncodeDecodeRoundTrip) {
  const crypto::MessageShare share{0x0123456789ABCDEFULL, {1, 2, 3, 0xFF}};
  const auto bytes = Proxy::EncodeShare(share);
  EXPECT_EQ(bytes.size(), 8u + 4u);
  EXPECT_EQ(Proxy::DecodeShare(bytes), share);
}

TEST(ProxyTest, DecodeRejectsTruncatedShare) {
  const std::vector<uint8_t> truncated{1, 2, 3};
  EXPECT_THROW(Proxy::DecodeShare(truncated), std::invalid_argument);
}

TEST(ProxyTest, DecodeOfEmptyPayloadShare) {
  const crypto::MessageShare share{42, {}};
  EXPECT_EQ(Proxy::DecodeShare(Proxy::EncodeShare(share)), share);
}

TEST(ProxyTest, ForwardMovesEverythingInToOut) {
  broker::Broker b;
  Proxy proxy(ProxyConfig{1, 4}, b);
  for (uint64_t mid = 0; mid < 100; ++mid) {
    proxy.Receive(crypto::MessageShare{mid, {static_cast<uint8_t>(mid)}},
                  static_cast<int64_t>(mid));
  }
  EXPECT_EQ(proxy.Forward(), 100u);
  EXPECT_EQ(proxy.forwarded(), 100u);
  broker::Consumer consumer(b.GetTopic("proxy1.out"));
  size_t count = 0;
  while (!consumer.CaughtUp()) {
    for (const auto& record : consumer.Poll(32)) {
      const auto share = Proxy::DecodeShare(record.payload);
      EXPECT_EQ(share.payload.size(), 1u);
      ++count;
    }
  }
  EXPECT_EQ(count, 100u);
}

TEST(ProxyTest, ForwardPreservesTimestamps) {
  broker::Broker b;
  Proxy proxy(ProxyConfig{0, 1}, b);
  proxy.Receive(crypto::MessageShare{1, {9}}, 12345);
  proxy.Forward();
  broker::Consumer consumer(b.GetTopic("proxy0.out"));
  const auto records = consumer.Poll(10);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].timestamp_ms, 12345);
}

TEST(ProxyTest, ForwardOnEmptyQueueIsZero) {
  broker::Broker b;
  Proxy proxy(ProxyConfig{0, 2}, b);
  EXPECT_EQ(proxy.Forward(), 0u);
}

TEST(ProxyTest, RepeatedForwardOnlyMovesNewRecords) {
  broker::Broker b;
  Proxy proxy(ProxyConfig{0, 2}, b);
  proxy.Receive(crypto::MessageShare{1, {1}}, 0);
  EXPECT_EQ(proxy.Forward(), 1u);
  EXPECT_EQ(proxy.Forward(), 0u);
  proxy.Receive(crypto::MessageShare{2, {2}}, 0);
  EXPECT_EQ(proxy.Forward(), 1u);
  EXPECT_EQ(proxy.forwarded(), 2u);
}

TEST(ProxyTest, ParallelForwardMovesEverything) {
  broker::Broker b;
  Proxy proxy(ProxyConfig{0, 4}, b);
  for (uint64_t mid = 0; mid < 5000; ++mid) {
    proxy.Receive(crypto::MessageShare{mid, {0, 1, 2}}, 0);
  }
  ThreadPool pool(4);
  EXPECT_EQ(proxy.ForwardParallel(pool), 5000u);
  broker::Consumer consumer(b.GetTopic("proxy0.out"));
  size_t count = 0;
  while (!consumer.CaughtUp()) {
    count += consumer.Poll(512).size();
  }
  EXPECT_EQ(count, 5000u);
}

TEST(ProxyTest, TwoProxiesAreIndependent) {
  broker::Broker b;
  Proxy p0(ProxyConfig{0, 2}, b);
  Proxy p1(ProxyConfig{1, 2}, b);
  p0.Receive(crypto::MessageShare{1, {1}}, 0);
  EXPECT_EQ(p0.Forward(), 1u);
  EXPECT_EQ(p1.Forward(), 0u);  // p1 never saw the share
}

}  // namespace
}  // namespace privapprox::proxy
