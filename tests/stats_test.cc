// Unit tests for the statistics substrate: special functions (t quantiles),
// running moments, and the SRS / stratified estimators of Eqs 2-4.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/moments.h"
#include "stats/special_functions.h"
#include "stats/srs.h"
#include "stats/stratified.h"

namespace privapprox::stats {
namespace {

// ------------------------------------------------------- special functions

TEST(SpecialFunctionsTest, IncompleteBetaEndpoints) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(SpecialFunctionsTest, IncompleteBetaSymmetry) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.25, 0.5, 0.73, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, x),
                1.0 - RegularizedIncompleteBeta(4.0, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(SpecialFunctionsTest, IncompleteBetaUniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(SpecialFunctionsTest, IncompleteBetaInvalidArgsThrow) {
  EXPECT_THROW(RegularizedIncompleteBeta(0.0, 1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(RegularizedIncompleteBeta(1.0, -1.0, 0.5),
               std::invalid_argument);
}

TEST(SpecialFunctionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(SpecialFunctionsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.999), 3.090232306, 1e-6);
}

TEST(SpecialFunctionsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9);
  }
}

TEST(SpecialFunctionsTest, NormalQuantileRejectsBoundaries) {
  EXPECT_THROW(NormalQuantile(0.0), std::invalid_argument);
  EXPECT_THROW(NormalQuantile(1.0), std::invalid_argument);
}

TEST(SpecialFunctionsTest, StudentTCdfSymmetry) {
  for (double df : {1.0, 5.0, 30.0}) {
    for (double t : {0.5, 1.3, 2.7}) {
      EXPECT_NEAR(StudentTCdf(t, df) + StudentTCdf(-t, df), 1.0, 1e-10);
    }
  }
  EXPECT_NEAR(StudentTCdf(0.0, 7.0), 0.5, 1e-12);
}

TEST(SpecialFunctionsTest, StudentTQuantileKnownValues) {
  // Classic t-table entries (two-sided 95% -> p = 0.975).
  EXPECT_NEAR(StudentTQuantile(0.975, 1.0), 12.7062, 1e-3);
  EXPECT_NEAR(StudentTQuantile(0.975, 5.0), 2.5706, 1e-4);
  EXPECT_NEAR(StudentTQuantile(0.975, 10.0), 2.2281, 1e-4);
  EXPECT_NEAR(StudentTQuantile(0.975, 30.0), 2.0423, 1e-4);
  EXPECT_NEAR(StudentTQuantile(0.95, 10.0), 1.8125, 1e-4);
}

TEST(SpecialFunctionsTest, StudentTQuantileConvergesToNormal) {
  EXPECT_NEAR(StudentTQuantile(0.975, 1e7), NormalQuantile(0.975), 1e-4);
}

TEST(SpecialFunctionsTest, StudentTQuantileInvertsCdf) {
  for (double df : {2.0, 9.0, 40.0}) {
    for (double p : {0.05, 0.3, 0.5, 0.8, 0.975}) {
      EXPECT_NEAR(StudentTCdf(StudentTQuantile(p, df), df), p, 1e-8);
    }
  }
}

TEST(SpecialFunctionsTest, CriticalValueMatchesQuantile) {
  EXPECT_NEAR(StudentTCriticalValue(0.95, 10.0),
              StudentTQuantile(0.975, 10.0), 1e-12);
  EXPECT_THROW(StudentTCriticalValue(1.0, 10.0), std::invalid_argument);
}

// --------------------------------------------------------------- moments

TEST(RunningMomentsTest, MatchesDirectComputation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningMoments moments = MomentsOf(values);
  EXPECT_EQ(moments.count(), values.size());
  EXPECT_NEAR(moments.Mean(), 5.0, 1e-12);
  EXPECT_NEAR(moments.PopulationVariance(), 4.0, 1e-12);
  EXPECT_NEAR(moments.SampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningMomentsTest, EmptyAndSingle) {
  RunningMoments moments;
  EXPECT_EQ(moments.count(), 0u);
  EXPECT_DOUBLE_EQ(moments.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(moments.SampleVariance(), 0.0);
  moments.Add(3.0);
  EXPECT_DOUBLE_EQ(moments.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(moments.SampleVariance(), 0.0);
}

TEST(RunningMomentsTest, MergeEqualsSequential) {
  Xoshiro256 rng(5);
  RunningMoments all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(left.SampleVariance(), all.SampleVariance(), 1e-9);
}

TEST(RunningMomentsTest, MergeWithEmpty) {
  RunningMoments a, b;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.Mean(), 1.5, 1e-12);
}

// ------------------------------------------------------------------ SRS

TEST(SrsEstimatorTest, FullCensusIsExactWithZeroError) {
  // When the "sample" is the entire population the finite-population
  // correction kills the error term.
  SrsSumEstimator estimator(5);
  const std::vector<double> population = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double v : population) {
    estimator.Add(v);
  }
  const Estimate est = estimator.EstimateSum();
  EXPECT_NEAR(est.value, 15.0, 1e-12);
  EXPECT_NEAR(est.error, 0.0, 1e-9);
}

TEST(SrsEstimatorTest, EstimateScalesByInverseSamplingFraction) {
  SrsSumEstimator estimator(100);
  for (int i = 0; i < 10; ++i) {
    estimator.Add(2.0);
  }
  const Estimate est = estimator.EstimateSum();
  EXPECT_NEAR(est.value, 200.0, 1e-12);  // U/U' * sum = 10 * 20
  EXPECT_NEAR(est.error, 0.0, 1e-9);     // zero variance sample
}

TEST(SrsEstimatorTest, ErrorMatchesManualFormula) {
  // Sample {1, 3} from population of 10: mean 2, sigma^2 = 2,
  // Var = U^2/n * sigma^2 * (U-n)/U = 100/2 * 2 * 0.8 = 80.
  SrsSumEstimator estimator(10, 0.95);
  estimator.Add(1.0);
  estimator.Add(3.0);
  const Estimate est = estimator.EstimateSum();
  EXPECT_NEAR(est.value, 20.0, 1e-12);
  const double t = StudentTCriticalValue(0.95, 1.0);
  EXPECT_NEAR(est.error, t * std::sqrt(80.0), 1e-9);
}

TEST(SrsEstimatorTest, MeanIsSumOverPopulation) {
  SrsSumEstimator estimator(50);
  estimator.Add(4.0);
  estimator.Add(6.0);
  const Estimate mean = estimator.EstimateMean();
  EXPECT_NEAR(mean.value, 5.0, 1e-12);
}

TEST(SrsEstimatorTest, CoverageAtStatedConfidence) {
  // Property: the 95% CI must contain the true population sum ~95% of the
  // time. Allow a generous tolerance band for 400 trials.
  Xoshiro256 rng(99);
  const size_t population_size = 2000;
  std::vector<double> population(population_size);
  double true_sum = 0.0;
  for (auto& v : population) {
    v = rng.NextDouble() * 10.0;
    true_sum += v;
  }
  int covered = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    SrsSumEstimator estimator(population_size, 0.95);
    for (size_t i = 0; i < population_size; ++i) {
      if (rng.NextBernoulli(0.05)) {
        estimator.Add(population[i]);
      }
    }
    const Estimate est = estimator.EstimateSum();
    if (est.sample_size < 2) {
      continue;
    }
    if (true_sum >= est.Lower() && true_sum <= est.Upper()) {
      ++covered;
    }
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(SrsEstimatorTest, RejectsBadArguments) {
  EXPECT_THROW(SrsSumEstimator(0), std::invalid_argument);
  EXPECT_THROW(SrsSumEstimator(10, 1.5), std::invalid_argument);
  SrsSumEstimator estimator(2);
  estimator.Add(1.0);
  estimator.Add(1.0);
  EXPECT_THROW(estimator.Add(1.0), std::logic_error);
}

TEST(SrsEstimatorTest, MergePartials) {
  SrsSumEstimator a(100), b(100);
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.sample_size(), 4u);
  EXPECT_NEAR(a.EstimateSum().value, 250.0, 1e-12);
  SrsSumEstimator c(50);
  EXPECT_THROW(a.Merge(c), std::invalid_argument);
}

TEST(EstimatePopulationSumTest, OneShotHelper) {
  const std::vector<double> sample = {1.0, 2.0, 3.0};
  const Estimate est = EstimatePopulationSum(sample, 30);
  EXPECT_NEAR(est.value, 60.0, 1e-12);
  EXPECT_GT(est.error, 0.0);
}

TEST(EstimateTest, RelativeError) {
  Estimate est;
  est.value = 200.0;
  est.error = 10.0;
  EXPECT_NEAR(est.RelativeError(), 0.05, 1e-12);
  est.value = 0.0;
  EXPECT_DOUBLE_EQ(est.RelativeError(), 0.0);
}

// ------------------------------------------------------------- stratified

TEST(StratifiedTest, CombinesStratumSums) {
  StratifiedSumEstimator estimator({10, 20});
  estimator.Add(0, 1.0);  // stratum 0 scaled by 10/1
  estimator.Add(1, 2.0);
  estimator.Add(1, 2.0);  // stratum 1 scaled by 20/2
  const Estimate est = estimator.EstimateSum();
  EXPECT_NEAR(est.value, 10.0 + 40.0, 1e-12);
}

TEST(StratifiedTest, BeatsSrsOnSkewedStrata) {
  // Two strata with very different means: stratified variance should be
  // much smaller than plain SRS variance at the same sample size.
  Xoshiro256 rng(7);
  const size_t u1 = 5000, u2 = 5000;
  std::vector<double> pop;
  for (size_t i = 0; i < u1; ++i) {
    pop.push_back(10.0 + rng.NextGaussian());
  }
  for (size_t i = 0; i < u2; ++i) {
    pop.push_back(100.0 + rng.NextGaussian());
  }
  StratifiedSumEstimator stratified({u1, u2});
  SrsSumEstimator srs(u1 + u2);
  // 200 samples per stratum for stratified; 400 mixed for SRS.
  for (int i = 0; i < 200; ++i) {
    stratified.Add(0, pop[rng.NextBounded(u1)]);
    stratified.Add(1, pop[u1 + rng.NextBounded(u2)]);
    srs.Add(pop[rng.NextBounded(u1 + u2)]);
    srs.Add(pop[rng.NextBounded(u1 + u2)]);
  }
  EXPECT_LT(stratified.EstimateSum().error, srs.EstimateSum().error);
}

TEST(StratifiedTest, PerStratumEstimates) {
  StratifiedSumEstimator estimator({4, 6});
  estimator.Add(0, 1.0);
  estimator.Add(0, 1.0);
  estimator.Add(1, 2.0);
  const auto per_stratum = estimator.PerStratumEstimates();
  ASSERT_EQ(per_stratum.size(), 2u);
  EXPECT_NEAR(per_stratum[0].value, 4.0, 1e-12);
  EXPECT_NEAR(per_stratum[1].value, 12.0, 1e-12);
}

TEST(StratifiedTest, RejectsBadInput) {
  EXPECT_THROW(StratifiedSumEstimator({}), std::invalid_argument);
  StratifiedSumEstimator estimator({5});
  EXPECT_THROW(estimator.Add(1, 1.0), std::out_of_range);
}

TEST(ProportionalAllocationTest, SplitsProportionally) {
  const auto alloc = ProportionalAllocation({100, 300}, 40);
  ASSERT_EQ(alloc.size(), 2u);
  EXPECT_EQ(alloc[0], 10u);
  EXPECT_EQ(alloc[1], 30u);
}

TEST(ProportionalAllocationTest, EnforcesMinimumAndCaps) {
  const auto alloc = ProportionalAllocation({2, 998}, 10, 3);
  EXPECT_EQ(alloc[0], 2u);  // min 3 capped at stratum size 2
  EXPECT_GE(alloc[1], 3u);
}

}  // namespace
}  // namespace privapprox::stats
