// Tests for the aggregator: join -> decrypt -> window -> estimate, plus the
// historical batch path with second-round sampling.

#include <gtest/gtest.h>

#include "aggregator/aggregator.h"
#include <cmath>

#include "aggregator/historical.h"
#include "broker/broker.h"
#include "client/client.h"
#include "proxy/proxy.h"

namespace privapprox::aggregator {
namespace {

core::Query MakeQuery() {
  return core::QueryBuilder()
      .WithId(1)
      .WithSql("SELECT speed FROM vehicle")
      .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
      .WithFrequencyMs(1000)
      .WithWindowMs(10000)
      .WithSlideMs(10000)
      .Build();
}

core::ExecutionParams NoNoiseParams() {
  core::ExecutionParams params;
  params.sampling_fraction = 1.0;
  params.randomization = {1.0, 0.5};
  return params;
}

struct Harness {
  explicit Harness(size_t population, core::ExecutionParams params,
                   bool inverted = false, size_t num_shards = 1)
      : query(MakeQuery()),
        proxy0(proxy::ProxyConfig{0, 2}, broker),
        proxy1(proxy::ProxyConfig{1, 2}, broker) {
    AggregatorConfig config;
    config.num_proxies = 2;
    config.population = population;
    config.answers_inverted = inverted;
    config.num_shards = num_shards;
    aggregator = std::make_unique<Aggregator>(
        config, query, params, broker,
        [this](const WindowedResult& r) { results.push_back(r); });
  }

  // Ships one client answer (already-built shares) through both proxies.
  void Ship(const std::vector<crypto::MessageShare>& shares, int64_t ts) {
    proxy0.Receive(shares[0], ts);
    proxy1.Receive(shares[1], ts);
  }

  void Pump() {
    proxy0.Forward();
    proxy1.Forward();
    aggregator->Drain();
  }

  broker::Broker broker;
  core::Query query;
  proxy::Proxy proxy0;
  proxy::Proxy proxy1;
  std::unique_ptr<Aggregator> aggregator;
  std::vector<WindowedResult> results;
};

client::Client MakeClient(uint64_t id, double speed) {
  client::Client c(client::ClientConfig{id, 2, 99});
  c.database().CreateTable("vehicle", {"speed"})
      .Insert(500, {localdb::Value(speed)});
  return c;
}

TEST(AggregatorTest, EndToEndExactWhenNoNoise) {
  const size_t population = 50;
  Harness harness(population, NoNoiseParams());
  // 50 clients: 30 at 15 mph (bucket 1), 20 at 42 mph (bucket 4).
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, i < 30 ? 15.0 : 42.0);
    c.Subscribe(harness.query, NoNoiseParams());
    const auto answer = c.AnswerQuery(5000);
    ASSERT_TRUE(answer.has_value());
    harness.Ship(answer->shares, answer->timestamp_ms);
  }
  harness.Pump();
  harness.aggregator->AdvanceWatermark(10000);
  ASSERT_EQ(harness.results.size(), 1u);
  const core::QueryResult& result = harness.results[0].result;
  EXPECT_EQ(result.participants, population);
  EXPECT_NEAR(result.buckets[1].estimate.value, 30.0, 1e-9);
  EXPECT_NEAR(result.buckets[4].estimate.value, 20.0, 1e-9);
  EXPECT_NEAR(result.buckets[0].estimate.value, 0.0, 1e-9);
  EXPECT_EQ(harness.aggregator->join_stats().joined, population);
}

TEST(AggregatorTest, WindowsFireOnlyPastWatermark) {
  Harness harness(10, NoNoiseParams());
  client::Client c = MakeClient(0, 15.0);
  c.Subscribe(harness.query, NoNoiseParams());
  const auto answer = c.AnswerQuery(5000);
  harness.Ship(answer->shares, answer->timestamp_ms);
  harness.Pump();
  harness.aggregator->AdvanceWatermark(9999);
  EXPECT_TRUE(harness.results.empty());
  harness.aggregator->AdvanceWatermark(10000);
  EXPECT_EQ(harness.results.size(), 1u);
}

TEST(AggregatorTest, FlushFiresPendingWindows) {
  Harness harness(10, NoNoiseParams());
  client::Client c = MakeClient(0, 15.0);
  c.Subscribe(harness.query, NoNoiseParams());
  const auto answer = c.AnswerQuery(5000);
  harness.Ship(answer->shares, answer->timestamp_ms);
  harness.Pump();
  harness.aggregator->Flush();
  EXPECT_EQ(harness.results.size(), 1u);
}

TEST(AggregatorTest, MalformedSharesAreCountedAndDropped) {
  Harness harness(10, NoNoiseParams());
  // Feed garbage directly into the proxy path: two shares whose combined
  // payload is too short for an AnswerMessage.
  harness.Ship({crypto::MessageShare{77, {1, 2}},
                crypto::MessageShare{77, {3, 4}}},
               100);
  harness.Pump();
  EXPECT_EQ(harness.aggregator->malformed_dropped(), 1u);
  harness.aggregator->Flush();
  EXPECT_TRUE(harness.results.empty());
}

TEST(AggregatorTest, WrongQueryIdIsDropped) {
  Harness harness(10, NoNoiseParams());
  // A valid message for a different query id.
  crypto::AnswerMessage message{/*query_id=*/999, BitVector(11)};
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(3, 0));
  harness.Ship(splitter.Split(message.Serialize()), 100);
  harness.Pump();
  EXPECT_EQ(harness.aggregator->wrong_query_dropped(), 1u);
}

TEST(AggregatorTest, WrongWidthAnswerIsDropped) {
  Harness harness(10, NoNoiseParams());
  crypto::AnswerMessage message{/*query_id=*/1, BitVector(5)};  // wrong width
  crypto::XorSplitter splitter(2, crypto::ChaCha20Rng::FromSeed(4, 0));
  harness.Ship(splitter.Split(message.Serialize()), 100);
  harness.Pump();
  EXPECT_EQ(harness.aggregator->wrong_query_dropped(), 1u);
}

TEST(AggregatorTest, LostShareNeverJoins) {
  Harness harness(10, NoNoiseParams());
  client::Client c = MakeClient(0, 15.0);
  c.Subscribe(harness.query, NoNoiseParams());
  const auto answer = c.AnswerQuery(5000);
  // Only proxy 0 receives its share; proxy 1's is lost.
  harness.proxy0.Receive(answer->shares[0], 5000);
  harness.Pump();
  EXPECT_EQ(harness.aggregator->join_stats().joined, 0u);
  harness.aggregator->AdvanceWatermark(100000);
  // No complete message ever entered a window: nothing fires, and the
  // partial group is eventually evicted by the join timeout.
  EXPECT_TRUE(harness.results.empty());
  EXPECT_EQ(harness.aggregator->join_stats().evicted_partial, 1u);
}

TEST(AggregatorTest, DebiasesRandomizedAnswers) {
  // With RR on and many answers, the de-biased estimate approaches truth.
  const size_t population = 3000;
  core::ExecutionParams params;
  params.sampling_fraction = 1.0;
  params.randomization = {0.5, 0.5};
  Harness harness(population, params);
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, i < 1800 ? 15.0 : 42.0);  // 60% bucket 1
    c.Subscribe(harness.query, params);
    const auto answer = c.AnswerQuery(5000);
    harness.Ship(answer->shares, answer->timestamp_ms);
  }
  harness.Pump();
  harness.aggregator->Flush();
  ASSERT_EQ(harness.results.size(), 1u);
  const auto& buckets = harness.results[0].result.buckets;
  EXPECT_NEAR(buckets[1].estimate.value, 1800.0, 150.0);
  EXPECT_NEAR(buckets[4].estimate.value, 1200.0, 150.0);
  // Error bars should cover the truth.
  EXPECT_LE(std::fabs(buckets[1].estimate.value - 1800.0),
            buckets[1].estimate.error * 1.5);
}

TEST(AggregatorTest, InvertedModeRecoversYesCounts) {
  const size_t population = 40;
  Harness harness(population, NoNoiseParams(), /*inverted=*/true);
  for (size_t i = 0; i < population; ++i) {
    client::Client c = [&] {
      client::ClientConfig config;
      config.client_id = i;
      config.num_proxies = 2;
      config.seed = 99;
      config.invert_answers = true;
      client::Client cl(config);
      cl.database().CreateTable("vehicle", {"speed"})
          .Insert(500, {localdb::Value(15.0)});
      return cl;
    }();
    c.Subscribe(harness.query, NoNoiseParams());
    const auto answer = c.AnswerQuery(5000);
    harness.Ship(answer->shares, answer->timestamp_ms);
  }
  harness.Pump();
  harness.aggregator->Flush();
  ASSERT_EQ(harness.results.size(), 1u);
  // All 40 clients are in bucket 1; the inverted pipeline must recover 40.
  EXPECT_NEAR(harness.results[0].result.buckets[1].estimate.value, 40.0,
              1e-6);
  // And 0 for an empty bucket.
  EXPECT_NEAR(harness.results[0].result.buckets[0].estimate.value, 0.0, 1e-6);
}

TEST(AggregatorTest, RejectsBadConfig) {
  broker::Broker b;
  proxy::Proxy p0(proxy::ProxyConfig{0, 2}, b);
  proxy::Proxy p1(proxy::ProxyConfig{1, 2}, b);
  AggregatorConfig config;
  config.num_proxies = 1;
  config.population = 10;
  EXPECT_THROW(Aggregator(config, MakeQuery(), NoNoiseParams(), b,
                          [](const WindowedResult&) {}),
               std::invalid_argument);
  config.num_proxies = 2;
  config.population = 0;
  EXPECT_THROW(Aggregator(config, MakeQuery(), NoNoiseParams(), b,
                          [](const WindowedResult&) {}),
               std::invalid_argument);
  config.population = 10;
  config.num_shards = 0;
  EXPECT_THROW(Aggregator(config, MakeQuery(), NoNoiseParams(), b,
                          [](const WindowedResult&) {}),
               std::invalid_argument);
}

TEST(AggregatorTest, RejectsDuplicateQueryRegistration) {
  // Lane state — join groups, windows, watermarks — is keyed by QID, so a
  // second registration under the same QID would silently cross two
  // queries' streams. The coordinator must reject it up front.
  broker::Broker b;
  proxy::Proxy p0(proxy::ProxyConfig{0, 2}, b);
  proxy::Proxy p1(proxy::ProxyConfig{1, 2}, b);
  AggregatorConfig config;
  config.num_proxies = 2;
  config.population = 10;
  Aggregator agg(config, b, [](const WindowedResult&) {});
  agg.RegisterQuery(MakeQuery(), NoNoiseParams());
  EXPECT_THROW(agg.RegisterQuery(MakeQuery(), NoNoiseParams()),
               std::invalid_argument);
  // A different QID is fine; the first lane is unaffected.
  core::Query other = core::QueryBuilder()
                          .WithId(2)
                          .WithSql("SELECT speed FROM vehicle")
                          .WithAnswerFormat(
                              core::AnswerFormat::UniformNumeric(0, 100, 10,
                                                                 true))
                          .WithFrequencyMs(1000)
                          .WithWindowMs(10000)
                          .WithSlideMs(10000)
                          .Build();
  EXPECT_NO_THROW(agg.RegisterQuery(other, NoNoiseParams()));
}

// ---------------------------------------------------------------- sharding

// Runs `population` clients through a harness with the given shard count
// and returns the fired results. No pool is wired, so the shards feed
// sequentially — this isolates the partition/merge logic itself.
std::vector<WindowedResult> RunSharded(size_t num_shards) {
  const size_t population = 60;
  Harness harness(population, NoNoiseParams(), /*inverted=*/false,
                  num_shards);
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, i % 2 == 0 ? 15.0 : 42.0);
    c.Subscribe(harness.query, NoNoiseParams());
    const auto answer = c.AnswerQuery(5000);
    harness.Ship(answer->shares, answer->timestamp_ms);
  }
  harness.Pump();
  harness.aggregator->AdvanceWatermark(10000);
  EXPECT_EQ(harness.aggregator->join_stats().joined, population);
  EXPECT_EQ(harness.aggregator->num_shards(), num_shards);
  return harness.results;
}

TEST(AggregatorTest, ShardedJoinIsBitIdenticalToSingleShard) {
  const std::vector<WindowedResult> oracle = RunSharded(1);
  ASSERT_EQ(oracle.size(), 1u);
  for (size_t shards : {2u, 3u, 4u, 7u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::vector<WindowedResult> sharded = RunSharded(shards);
    ASSERT_EQ(sharded.size(), oracle.size());
    for (size_t w = 0; w < oracle.size(); ++w) {
      EXPECT_EQ(sharded[w].window, oracle[w].window);
      EXPECT_EQ(sharded[w].result.participants, oracle[w].result.participants);
      ASSERT_EQ(sharded[w].result.buckets.size(),
                oracle[w].result.buckets.size());
      for (size_t i = 0; i < oracle[w].result.buckets.size(); ++i) {
        EXPECT_EQ(sharded[w].result.buckets[i].estimate.value,
                  oracle[w].result.buckets[i].estimate.value);
        EXPECT_EQ(sharded[w].result.buckets[i].estimate.error,
                  oracle[w].result.buckets[i].estimate.error);
        EXPECT_EQ(sharded[w].result.buckets[i].randomized_count,
                  oracle[w].result.buckets[i].randomized_count);
      }
    }
  }
}

TEST(AggregatorTest, ShardMetricsAccountForEveryShare) {
  // Per-shard counters partition the totals: routed shares sum to the
  // joiner's input and per-shard joins sum to the joined count.
  const size_t population = 40;
  const size_t num_shards = 4;
  metrics::Registry registry;
  Harness harness(population, NoNoiseParams(), /*inverted=*/false, 1);
  // Rebuild the aggregator with instrumented shards.
  AggregatorConfig config;
  config.num_proxies = 2;
  config.population = population;
  config.num_shards = num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    const metrics::Labels labels = {{"shard", std::to_string(s)}};
    config.shard_shares_total.push_back(
        &registry.GetCounter("shard_shares", "", labels));
    config.shard_joined_total.push_back(
        &registry.GetCounter("shard_joined", "", labels));
  }
  config.shard_imbalance_milli = &registry.GetGauge("shard_imbalance", "");
  harness.aggregator = std::make_unique<Aggregator>(
      config, harness.query, NoNoiseParams(), harness.broker,
      [&harness](const WindowedResult& r) { harness.results.push_back(r); });
  for (size_t i = 0; i < population; ++i) {
    client::Client c = MakeClient(i, 15.0);
    c.Subscribe(harness.query, NoNoiseParams());
    const auto answer = c.AnswerQuery(5000);
    harness.Ship(answer->shares, answer->timestamp_ms);
  }
  harness.Pump();
  uint64_t routed = 0;
  uint64_t joined = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    routed += config.shard_shares_total[s]->Value();
    joined += config.shard_joined_total[s]->Value();
  }
  EXPECT_EQ(routed, population * 2);  // one share per proxy per client
  EXPECT_EQ(joined, population);
  // Both proxies saw a balanced MID mix: the gauge is near 1000 (per-mille
  // of the mean) — loosely bounded, the point is that it was set at all.
  EXPECT_GE(config.shard_imbalance_milli->Value(), 1000);
  EXPECT_LT(config.shard_imbalance_milli->Value(), 3000);
}

// ------------------------------------------------------------- historical

TEST(ResponseStoreTest, RangeQueries) {
  ResponseStore store;
  BitVector answer(3);
  answer.Set(1, true);
  for (int64_t ts = 0; ts < 100; ts += 10) {
    store.Append(ts, answer);
  }
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.Range(20, 50).size(), 3u);
  EXPECT_EQ(store.Range(200, 300).size(), 0u);
}

TEST(HistoricalAnalyticsTest, FullBudgetMatchesStreamCounts) {
  ResponseStore store;
  BitVector yes(2), no(2);
  yes.Set(0, true);
  no.Set(1, true);
  for (int i = 0; i < 60; ++i) {
    store.Append(i, yes);
  }
  for (int i = 60; i < 100; ++i) {
    store.Append(i, no);
  }
  core::ExecutionParams params;
  params.randomization = {1.0, 0.5};
  HistoricalAnalytics analytics(store, params, /*population=*/100);
  Xoshiro256 rng(1);
  const core::QueryResult result =
      analytics.Run(0, 100, BatchQueryBudget{1.0}, rng, 2);
  EXPECT_NEAR(result.buckets[0].estimate.value, 60.0, 1e-9);
  EXPECT_NEAR(result.buckets[1].estimate.value, 40.0, 1e-9);
}

TEST(HistoricalAnalyticsTest, SecondRoundSamplingStillUnbiased) {
  ResponseStore store;
  BitVector yes(1);
  yes.Set(0, true);
  for (int i = 0; i < 6000; ++i) {
    store.Append(i, yes);
  }
  for (int i = 6000; i < 10000; ++i) {
    store.Append(i, BitVector(1));
  }
  core::ExecutionParams params;
  params.randomization = {1.0, 0.5};
  HistoricalAnalytics analytics(store, params, /*population=*/10000);
  Xoshiro256 rng(2);
  const core::QueryResult result =
      analytics.Run(0, 10000, BatchQueryBudget{0.3}, rng, 1);
  // Estimate scaled back to population despite processing ~30%.
  EXPECT_NEAR(result.buckets[0].estimate.value, 6000.0, 400.0);
  EXPECT_LT(result.participants, 3600u);
  EXPECT_GT(result.buckets[0].estimate.error, 0.0);
}

TEST(HistoricalAnalyticsTest, TimeRangeRestrictsData) {
  ResponseStore store;
  BitVector yes(1);
  yes.Set(0, true);
  for (int i = 0; i < 100; ++i) {
    store.Append(i, yes);
  }
  core::ExecutionParams params;
  params.randomization = {1.0, 0.5};
  HistoricalAnalytics analytics(store, params, 100);
  Xoshiro256 rng(3);
  const core::QueryResult result =
      analytics.Run(0, 50, BatchQueryBudget{1.0}, rng, 1);
  EXPECT_EQ(result.participants, 50u);
}

TEST(HistoricalAnalyticsTest, RejectsBadBudget) {
  ResponseStore store;
  core::ExecutionParams params;
  HistoricalAnalytics analytics(store, params, 10);
  Xoshiro256 rng(4);
  EXPECT_THROW(analytics.Run(0, 10, BatchQueryBudget{0.0}, rng, 1),
               std::invalid_argument);
  EXPECT_THROW(analytics.Run(0, 10, BatchQueryBudget{1.5}, rng, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::aggregator
