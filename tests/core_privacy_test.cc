// Tests for privacy accounting: Eq 8 epsilon, amplification by sampling
// (tech report Eq 19), and the inverse solvers the budget initializer uses.
// The Table 1 epsilon column is reproduced exactly.

#include <gtest/gtest.h>

#include <cmath>

#include "core/privacy.h"

namespace privapprox::core {
namespace {

TEST(EpsilonDpTest, ReproducesTable1Column) {
  // Table 1 privacy levels for the nine (p, q) combinations. The paper
  // reports the *zero-knowledge* level at s = 0.6; the relation is
  // eps_zk = ln(1 + s(e^eps_dp - 1)). We verify both columns.
  struct Row {
    double p, q, eps_table;
  };
  const Row rows[] = {
      {0.3, 0.3, 1.7047}, {0.3, 0.6, 1.3862}, {0.3, 0.9, 1.2527},
      {0.6, 0.3, 2.5649}, {0.6, 0.6, 2.0476}, {0.6, 0.9, 1.7917},
      {0.9, 0.3, 4.1820}, {0.9, 0.6, 3.5263}, {0.9, 0.9, 3.1570},
  };
  for (const Row& row : rows) {
    const double eps_zk = EpsilonZk(RandomizationParams{row.p, row.q}, 0.6);
    // Table 1's epsilon column is the Eq 19 zero-knowledge level at s = 0.6.
    EXPECT_NEAR(eps_zk, row.eps_table, 5e-4)
        << "p=" << row.p << " q=" << row.q;
  }
}

TEST(EpsilonDpTest, ClosedForm) {
  // eps = ln((p + (1-p)q) / ((1-p)q)) for p=0.5, q=0.5: ln(0.75/0.25)=ln 3.
  EXPECT_NEAR(EpsilonDp(RandomizationParams{0.5, 0.5}), std::log(3.0), 1e-12);
}

TEST(EpsilonDpTest, NoRandomizationIsInfinite) {
  EXPECT_TRUE(std::isinf(EpsilonDp(RandomizationParams{1.0, 0.5})));
}

TEST(EpsilonDpTest, MonotoneInP) {
  double previous = 0.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double eps = EpsilonDp(RandomizationParams{p, 0.5});
    EXPECT_GT(eps, previous);
    previous = eps;
  }
}

TEST(EpsilonDpTest, MonotoneDecreasingInQ) {
  // Higher q -> more forced yes -> more deniability -> lower eps.
  double previous = 1e18;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double eps = EpsilonDp(RandomizationParams{0.6, q});
    EXPECT_LT(eps, previous);
    previous = eps;
  }
}

TEST(AmplifyBySamplingTest, IdentityAtFullSampling) {
  EXPECT_NEAR(AmplifyBySampling(2.0, 1.0), 2.0, 1e-12);
}

TEST(AmplifyBySamplingTest, StrictlyTightensForSubsampling) {
  for (double s : {0.1, 0.4, 0.6, 0.9}) {
    EXPECT_LT(AmplifyBySampling(2.0, s), 2.0);
  }
}

TEST(AmplifyBySamplingTest, MonotoneInS) {
  double previous = 0.0;
  for (double s : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double eps = AmplifyBySampling(1.5, s);
    EXPECT_GT(eps, previous);
    previous = eps;
  }
}

TEST(AmplifyBySamplingTest, SmallSApproachesLinear) {
  // For small s, eps(s) ~= s * (e^eps - 1).
  const double eps = 1.0, s = 1e-4;
  EXPECT_NEAR(AmplifyBySampling(eps, s), s * std::expm1(eps), 1e-7);
}

TEST(AmplifyBySamplingTest, RejectsBadArgs) {
  EXPECT_THROW(AmplifyBySampling(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(AmplifyBySampling(1.0, 1.1), std::invalid_argument);
  EXPECT_THROW(AmplifyBySampling(-1.0, 0.5), std::invalid_argument);
}

TEST(EpsilonZkTest, MonotoneInSamplingFraction) {
  const RandomizationParams params{0.9, 0.6};
  double previous = 0.0;
  for (double s : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double eps = EpsilonZk(params, s);
    EXPECT_GT(eps, previous) << "s=" << s;
    previous = eps;
  }
}

TEST(EpsilonZkTest, DivergesAtFullSampling) {
  EXPECT_TRUE(std::isinf(EpsilonZk(RandomizationParams{0.9, 0.6}, 1.0)));
}

TEST(SamplingFractionForEpsilonZkTest, InvertsEq19) {
  const RandomizationParams params{0.6, 0.6};
  for (double target : {1.0, 2.0, 3.0}) {
    const double s = SamplingFractionForEpsilonZk(params, target);
    EXPECT_NEAR(EpsilonZk(params, s), target, 1e-6);
  }
}

TEST(SamplingFractionForEpsilonZkTest, RejectsBadArgs) {
  EXPECT_THROW(
      SamplingFractionForEpsilonZk(RandomizationParams{1.0, 0.5}, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      SamplingFractionForEpsilonZk(RandomizationParams{0.5, 0.5}, 0.0),
      std::invalid_argument);
}

TEST(SamplingFractionForEpsilonTest, InvertsAmplification) {
  const double base = 2.5;
  for (double target : {0.5, 1.0, 2.0}) {
    const double s = SamplingFractionForEpsilon(base, target);
    EXPECT_NEAR(AmplifyBySampling(base, s), target, 1e-9);
  }
}

TEST(SamplingFractionForEpsilonTest, SaturatesAtOne) {
  EXPECT_DOUBLE_EQ(SamplingFractionForEpsilon(1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(SamplingFractionForEpsilon(1.0, 1.0), 1.0);
}

TEST(FirstCoinForEpsilonTest, InvertsEquation8) {
  for (double q : {0.3, 0.5, 0.7}) {
    for (double target : {0.5, 1.0, 2.0, 3.0}) {
      const double p = FirstCoinForEpsilon(q, target);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
      EXPECT_NEAR(EpsilonDp(RandomizationParams{p, q}), target, 1e-9);
    }
  }
}

TEST(FirstCoinForEpsilonTest, RejectsBadArgs) {
  EXPECT_THROW(FirstCoinForEpsilon(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(FirstCoinForEpsilon(0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::core
