// Parameterized property sweeps (TEST_P) over the core invariants:
//  - randomized response de-biasing is unbiased for every (p, q) grid point
//  - the privacy accountant is consistent across the (p, q, s) grid
//  - XOR split/combine round-trips for every share count and payload size
//  - sampling + randomization commute distributionally (paper §4)
//  - the end-to-end estimator's error bound covers the truth across
//    parameter combinations.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/error_estimation.h"
#include "core/inversion.h"
#include "core/privacy.h"
#include "core/randomized_response.h"
#include "crypto/xor_cipher.h"
#include "workload/synthetic.h"

namespace privapprox {
namespace {

using core::RandomizationParams;
using core::RandomizedResponse;

// ------------------------------------------------ RR unbiasedness over grid

class RrGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RrGridTest, DebiasIsUnbiased) {
  const auto [p, q] = GetParam();
  Xoshiro256 rng(static_cast<uint64_t>(p * 1000 + q * 10));
  const RandomizedResponse rr(RandomizationParams{p, q});
  const size_t n = 20000;
  const size_t truthful_yes = 12000;
  double mean_estimate = 0.0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    size_t ry = 0;
    for (size_t i = 0; i < n; ++i) {
      ry += rr.RandomizeBit(i < truthful_yes, rng) ? 1 : 0;
    }
    mean_estimate += rr.DebiasCount(static_cast<double>(ry),
                                    static_cast<double>(n));
  }
  mean_estimate /= trials;
  const double se = rr.DebiasStdDev(0.6, n) / std::sqrt(trials);
  EXPECT_NEAR(mean_estimate, 12000.0, 4.0 * se)
      << "p=" << p << " q=" << q;
}

TEST_P(RrGridTest, PrivacyAccountingConsistent) {
  const auto [p, q] = GetParam();
  const RandomizationParams params{p, q};
  const double eps = core::EpsilonDp(params);
  EXPECT_GT(eps, 0.0);
  // Eq 8 really is the log-ratio of the two response probabilities.
  const double yes_given_yes = p + (1 - p) * q;
  const double yes_given_no = (1 - p) * q;
  EXPECT_NEAR(eps, std::log(yes_given_yes / yes_given_no), 1e-12);
  // Amplification bracketed and monotone.
  double previous = 0.0;
  for (double s : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double amplified = core::AmplifyBySampling(eps, s);
    EXPECT_GT(amplified, previous);
    EXPECT_LE(amplified, eps + 1e-12);
    previous = amplified;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PqGrid, RrGridTest,
    ::testing::Combine(::testing::Values(0.3, 0.6, 0.9),
                       ::testing::Values(0.3, 0.6, 0.9)),
    [](const auto& info) {
      return "p" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_q" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// -------------------------------------------------- XOR split/combine sweep

class XorSplitTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(XorSplitTest, RoundTripsAnyShareCountAndSize) {
  const auto [num_shares, payload_size] = GetParam();
  crypto::XorSplitter splitter(
      num_shares, crypto::ChaCha20Rng::FromSeed(num_shares, payload_size));
  Xoshiro256 rng(payload_size * 31 + num_shares);
  std::vector<uint8_t> plaintext(payload_size);
  FillRandomBytes(rng, plaintext);
  const auto shares = splitter.Split(plaintext);
  ASSERT_EQ(shares.size(), num_shares);
  for (const auto& share : shares) {
    EXPECT_EQ(share.payload.size(), payload_size);
  }
  EXPECT_EQ(crypto::XorSplitter::Combine(shares), plaintext);
}

INSTANTIATE_TEST_SUITE_P(
    ShareGrid, XorSplitTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1, 13, 128, 4096)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------ sampling/randomization commutativity

class CommuteTest : public ::testing::TestWithParam<double> {};

TEST_P(CommuteTest, SampleThenRandomizeEqualsRandomizeThenSample) {
  // §4: sampling and randomized response commute. Compare the distribution
  // of the de-biased, scaled estimate under both orders.
  const double s = GetParam();
  Xoshiro256 rng(static_cast<uint64_t>(s * 1e6));
  const RandomizedResponse rr(RandomizationParams{0.7, 0.5});
  const size_t population = 30000;
  const size_t truthful_yes = 18000;

  double mean_a = 0.0, mean_b = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    // Order A: sample first, then randomize the participants.
    size_t n_a = 0, ry_a = 0;
    // Order B: randomize everyone, then sample the randomized answers.
    size_t n_b = 0, ry_b = 0;
    for (size_t i = 0; i < population; ++i) {
      const bool truth = i < truthful_yes;
      if (rng.NextBernoulli(s)) {
        ++n_a;
        ry_a += rr.RandomizeBit(truth, rng) ? 1 : 0;
      }
      const bool randomized = rr.RandomizeBit(truth, rng);
      if (rng.NextBernoulli(s)) {
        ++n_b;
        ry_b += randomized ? 1 : 0;
      }
    }
    mean_a += rr.DebiasCount(ry_a, n_a) / n_a;
    mean_b += rr.DebiasCount(ry_b, n_b) / n_b;
  }
  mean_a /= trials;
  mean_b /= trials;
  EXPECT_NEAR(mean_a, 0.6, 0.02);
  EXPECT_NEAR(mean_b, 0.6, 0.02);
  EXPECT_NEAR(mean_a, mean_b, 0.02);
}

INSTANTIATE_TEST_SUITE_P(SamplingFractions, CommuteTest,
                         ::testing::Values(0.2, 0.5, 0.8),
                         [](const auto& info) {
                           return "s" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

// -------------------------------------------- end-to-end coverage property

class CoverageTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CoverageTest, ErrorBoundCoversTruth) {
  const auto [s, p, q] = GetParam();
  Xoshiro256 rng(static_cast<uint64_t>(s * 100 + p * 10 + q));
  core::ExecutionParams params;
  params.sampling_fraction = s;
  params.randomization = {p, q};
  const size_t population = 20000;
  const double yes_fraction = 0.6;
  const core::ErrorEstimator estimator(params, population, 0.95);
  const RandomizedResponse rr(params.randomization);
  int covered = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    size_t participants = 0, ry = 0;
    for (size_t i = 0; i < population; ++i) {
      if (!rng.NextBernoulli(s)) {
        continue;
      }
      ++participants;
      ry += rr.RandomizeBit(static_cast<double>(i) < yes_fraction * population,
                            rng)
                ? 1
                : 0;
    }
    Histogram counts(std::vector<double>{static_cast<double>(ry)});
    const core::QueryResult result = estimator.Estimate(counts, participants);
    const double truth = yes_fraction * population;
    if (truth >= result.buckets[0].estimate.Lower() &&
        truth <= result.buckets[0].estimate.Upper()) {
      ++covered;
    }
  }
  // 95% CI should cover >= ~85% of the time even with only 60 trials.
  EXPECT_GE(covered, 51) << "s=" << s << " p=" << p << " q=" << q;
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, CoverageTest,
    ::testing::Combine(::testing::Values(0.3, 0.9),
                       ::testing::Values(0.6, 0.9),
                       ::testing::Values(0.3, 0.6)),
    [](const auto& info) {
      return "s" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
             "_q" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
    });

// -------------------------------------------- inversion decision property

class InversionDecisionTest : public ::testing::TestWithParam<double> {};

TEST_P(InversionDecisionTest, DecisionMatchesDistanceToQ) {
  const double q = GetParam();
  for (double y = 0.05; y < 1.0; y += 0.05) {
    const bool invert = core::ShouldInvertQuery(y, q);
    const double native_distance = std::fabs(y - q);
    const double inverted_distance = std::fabs((1.0 - y) - q);
    EXPECT_EQ(invert, inverted_distance < native_distance)
        << "y=" << y << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(QValues, InversionDecisionTest,
                         ::testing::Values(0.3, 0.5, 0.6, 0.9),
                         [](const auto& info) {
                           return "q" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

}  // namespace
}  // namespace privapprox
