// Tests for the error estimator (§3.2.4), the empirical RR calibrator, and
// query inversion (§3.3.2).

#include <gtest/gtest.h>

#include <cmath>

#include "core/error_estimation.h"
#include "core/inversion.h"
#include "stats/special_functions.h"
#include "workload/synthetic.h"

namespace privapprox::core {
namespace {

ExecutionParams MakeParams(double s, double p, double q) {
  ExecutionParams params;
  params.sampling_fraction = s;
  params.randomization = {p, q};
  return params;
}

TEST(ErrorEstimatorTest, NoSamplingNoRandomizationIsExact) {
  // s = 1 and p = 1: the pipeline is a plain census; estimates must equal
  // the raw counts with zero error.
  const ErrorEstimator estimator(MakeParams(1.0, 1.0, 0.5), 1000);
  Histogram counts(std::vector<double>{600.0, 400.0});
  const QueryResult result = estimator.Estimate(counts, 1000);
  EXPECT_NEAR(result.buckets[0].estimate.value, 600.0, 1e-9);
  EXPECT_NEAR(result.buckets[1].estimate.value, 400.0, 1e-9);
  EXPECT_NEAR(result.buckets[0].estimate.error, 0.0, 1e-9);
}

TEST(ErrorEstimatorTest, EmptyWindowGivesZeroEstimates) {
  const ErrorEstimator estimator(MakeParams(0.5, 0.9, 0.6), 1000);
  const QueryResult result = estimator.Estimate(Histogram(3), 0);
  EXPECT_EQ(result.participants, 0u);
  for (const auto& bucket : result.buckets) {
    EXPECT_DOUBLE_EQ(bucket.estimate.value, 0.0);
    EXPECT_DOUBLE_EQ(bucket.estimate.error, 0.0);
  }
}

TEST(ErrorEstimatorTest, ScalesSampleToPopulation) {
  const ErrorEstimator estimator(MakeParams(0.1, 1.0, 0.5), 10000);
  Histogram counts(std::vector<double>{500.0});
  const QueryResult result = estimator.Estimate(counts, 1000);
  // 500 yes among 1000 participants -> 5000 in a population of 10000.
  EXPECT_NEAR(result.buckets[0].estimate.value, 5000.0, 1e-9);
  EXPECT_GT(result.buckets[0].estimate.error, 0.0);
}

TEST(ErrorEstimatorTest, ErrorComponentsAreIndependentAndAdd) {
  const ErrorEstimator estimator(MakeParams(0.5, 0.7, 0.5), 10000);
  const double fraction = 0.4;
  const size_t participants = 5000;
  const double sd_sampling = estimator.SamplingStdDev(fraction, participants);
  const double sd_rr = estimator.RandomizationStdDev(fraction, participants);
  EXPECT_GT(sd_sampling, 0.0);
  EXPECT_GT(sd_rr, 0.0);
  // The combined margin in Estimate must be t * sqrt(sa^2 + sr^2); verify
  // against a manual reconstruction.
  Histogram counts(std::vector<double>{0.0});
  // Build randomized count whose debias yields exactly `fraction`:
  // Ry = p*y*N + (1-p)q N.
  const double n = static_cast<double>(participants);
  counts.SetCount(0, 0.7 * fraction * n + 0.3 * 0.5 * n);
  const QueryResult result = estimator.Estimate(counts, participants);
  const double t = stats::StudentTCriticalValue(0.95, n - 1.0);
  EXPECT_NEAR(result.buckets[0].estimate.error,
              t * std::sqrt(sd_sampling * sd_sampling + sd_rr * sd_rr),
              1e-6 * result.buckets[0].estimate.error + 1e-9);
}

TEST(ErrorEstimatorTest, FullCensusHasNoSamplingError) {
  const ErrorEstimator estimator(MakeParams(1.0, 0.9, 0.6), 1000);
  EXPECT_DOUBLE_EQ(estimator.SamplingStdDev(0.5, 1000), 0.0);
  EXPECT_GT(estimator.RandomizationStdDev(0.5, 1000), 0.0);
}

TEST(ErrorEstimatorTest, ConfidenceIntervalCoversTruth) {
  // End-to-end statistical property: sample + randomize a known population,
  // estimate, and check the CI covers the true count at roughly the stated
  // rate.
  Xoshiro256 rng(17);
  const size_t population = 20000;
  const double yes_fraction = 0.6;
  const ExecutionParams params = MakeParams(0.3, 0.7, 0.5);
  const ErrorEstimator estimator(params, population);
  const RandomizedResponse rr(params.randomization);
  int covered = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    size_t participants = 0, randomized_yes = 0;
    for (size_t i = 0; i < population; ++i) {
      if (!rng.NextBernoulli(params.sampling_fraction)) {
        continue;
      }
      ++participants;
      const bool truthful =
          static_cast<double>(i) < yes_fraction * population;
      if (rr.RandomizeBit(truthful, rng)) {
        ++randomized_yes;
      }
    }
    Histogram counts(std::vector<double>{static_cast<double>(randomized_yes)});
    const QueryResult result = estimator.Estimate(counts, participants);
    const double truth = yes_fraction * population;
    if (truth >= result.buckets[0].estimate.Lower() &&
        truth <= result.buckets[0].estimate.Upper()) {
      ++covered;
    }
  }
  EXPECT_GT(static_cast<double>(covered) / trials, 0.90);
}

TEST(ErrorEstimatorTest, RejectsBadConstruction) {
  EXPECT_THROW(ErrorEstimator(MakeParams(0.5, 0.9, 0.6), 0),
               std::invalid_argument);
  EXPECT_THROW(ErrorEstimator(MakeParams(0.5, 0.9, 0.6), 10, 1.0),
               std::invalid_argument);
}

TEST(QueryResultTest, AccuracyLossAgainstExact) {
  ErrorEstimator estimator(MakeParams(1.0, 1.0, 0.5), 100);
  Histogram counts(std::vector<double>{60.0, 40.0});
  const QueryResult result = estimator.Estimate(counts, 100);
  Histogram exact(std::vector<double>{50.0, 50.0});
  EXPECT_NEAR(result.AccuracyLossAgainst(exact), 0.2, 1e-9);
}

TEST(QueryResultTest, WeightedAccuracyLossAgainstExact) {
  ErrorEstimator estimator(MakeParams(1.0, 1.0, 0.5), 100);
  Histogram counts(std::vector<double>{60.0, 40.0});
  const QueryResult result = estimator.Estimate(counts, 100);
  // Reference {50, 50}: |60-50| + |40-50| = 20 over total 100 -> 0.2.
  EXPECT_NEAR(result.WeightedAccuracyLossAgainst(
                  Histogram(std::vector<double>{50.0, 50.0})),
              0.2, 1e-9);
  // Perfect match -> 0.
  EXPECT_NEAR(result.WeightedAccuracyLossAgainst(
                  Histogram(std::vector<double>{60.0, 40.0})),
              0.0, 1e-9);
  EXPECT_THROW(result.WeightedAccuracyLossAgainst(Histogram(3)),
               std::invalid_argument);
  // Empty reference yields 0 (nothing to compare against).
  EXPECT_DOUBLE_EQ(result.WeightedAccuracyLossAgainst(Histogram(2)), 0.0);
}

TEST(QueryResultTest, WeightedLossIgnoresTailDomination) {
  // A tiny tail bucket with large *relative* error barely moves the
  // weighted metric but dominates the unweighted one.
  ErrorEstimator estimator(MakeParams(1.0, 1.0, 0.5), 1000);
  Histogram counts(std::vector<double>{995.0, 5.0});
  const QueryResult result = estimator.Estimate(counts, 1000);
  Histogram exact(std::vector<double>{1000.0, 1.0});  // tail off by 5x
  EXPECT_GT(result.AccuracyLossAgainst(exact), 1.0);           // ~200% mean
  EXPECT_LT(result.WeightedAccuracyLossAgainst(exact), 0.02);  // ~0.9%
}

TEST(RrCalibratorTest, LossShrinksWithMoreTruth) {
  Xoshiro256 rng(19);
  const RrCalibrator noisy(RandomizationParams{0.3, 0.6}, 10000, 0.6);
  const RrCalibrator faithful(RandomizationParams{0.9, 0.6}, 10000, 0.6);
  const double loss_noisy = noisy.MeasureAccuracyLoss(30, rng);
  const double loss_faithful = faithful.MeasureAccuracyLoss(30, rng);
  EXPECT_GT(loss_noisy, loss_faithful);
}

TEST(RrCalibratorTest, Table1MagnitudeAtP03Q06) {
  // Table 1: p=0.3, q=0.6 at 10,000 answers, 60% yes -> eta ~ 0.026. Allow
  // a factor-2 band (it is a noisy statistic).
  Xoshiro256 rng(23);
  const RrCalibrator calibrator(RandomizationParams{0.3, 0.6}, 10000, 0.6);
  const double loss = calibrator.MeasureAccuracyLoss(100, rng);
  EXPECT_GT(loss, 0.005);
  EXPECT_LT(loss, 0.06);
}

TEST(RrCalibratorTest, RejectsBadArgs) {
  EXPECT_THROW(RrCalibrator(RandomizationParams{0.5, 0.5}, 0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(RrCalibrator(RandomizationParams{0.5, 0.5}, 10, 1.5),
               std::invalid_argument);
}

// ----------------------------------------------------------------- inversion

TEST(InversionTest, ShouldInvertWhenYesFractionFarFromQ) {
  // q = 0.6: a 10% yes-fraction is far from q, its complement (90%) is
  // closer -> invert. A 60% fraction matches q -> don't.
  EXPECT_TRUE(ShouldInvertQuery(0.1, 0.6));
  EXPECT_FALSE(ShouldInvertQuery(0.6, 0.6));
  EXPECT_FALSE(ShouldInvertQuery(0.9, 0.6));  // 0.9 closer to 0.6 than 0.1
}

TEST(InversionTest, InvertAnswerFlipsEveryBit) {
  BitVector answer(5);
  answer.Set(2, true);
  const BitVector inverted = InvertAnswer(answer);
  EXPECT_EQ(inverted.PopCount(), 4u);
  EXPECT_FALSE(inverted.Get(2));
  EXPECT_EQ(InvertAnswer(inverted), answer);
}

TEST(InversionTest, YesCountRecovery) {
  EXPECT_DOUBLE_EQ(YesCountFromInverted(9000.0, 10000.0), 1000.0);
}

TEST(InversionTest, InversionImprovesUtilityForRareYes) {
  // Fig 5a's core claim: with y = 0.1 and q = 0.6, the inverted query (which
  // counts the truthful "No" answers, §3.3.2) has much lower accuracy loss
  // than the native query — the paper reports 2.54% -> 0.4%. The loss is
  // measured on the counted quantity, as in the paper.
  Xoshiro256 rng(29);
  const size_t n = 10000;
  const double y = 0.1;
  const RandomizedResponse rr(RandomizationParams{0.9, 0.6});
  double native_loss = 0.0, inverted_loss = 0.0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    size_t native_yes = 0, inverted_yes = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool truthful = static_cast<double>(i) < y * n;
      if (rr.RandomizeBit(truthful, rng)) {
        ++native_yes;
      }
      if (rr.RandomizeBit(!truthful, rng)) {
        ++inverted_yes;
      }
    }
    const double yes_truth = y * n;
    const double no_truth = (1.0 - y) * n;
    native_loss += AccuracyLoss(
        yes_truth, rr.DebiasCount(static_cast<double>(native_yes), n));
    inverted_loss += AccuracyLoss(
        no_truth, rr.DebiasCount(static_cast<double>(inverted_yes), n));
  }
  // The inverted query's relative loss should be several times smaller
  // (the counted "No" population is 9x larger).
  EXPECT_LT(inverted_loss * 3.0, native_loss);
}

}  // namespace
}  // namespace privapprox::core
