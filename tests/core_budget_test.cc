// Tests for the budget initializer (budget -> (s, p, q)) and the per-epoch
// feedback controller of §5.

#include <gtest/gtest.h>

#include <cmath>

#include "core/budget.h"
#include "core/budget_manager.h"
#include "core/privacy.h"

namespace privapprox::core {
namespace {

TEST(ExecutionParamsTest, Validation) {
  ExecutionParams params;
  EXPECT_NO_THROW(params.Validate());
  params.sampling_fraction = 0.0;
  EXPECT_THROW(params.Validate(), std::invalid_argument);
  params.sampling_fraction = 0.5;
  params.randomization.q = 1.5;
  EXPECT_THROW(params.Validate(), std::invalid_argument);
}

TEST(PredictAccuracyLossTest, DecreasesWithSampling) {
  ExecutionParams params;
  params.randomization = {0.9, 0.6};
  double previous = 1e9;
  for (double s : {0.1, 0.3, 0.6, 0.9}) {
    params.sampling_fraction = s;
    const double loss = PredictAccuracyLoss(params, 100000, 0.6);
    EXPECT_LT(loss, previous);
    previous = loss;
  }
}

TEST(PredictAccuracyLossTest, DecreasesWithPopulation) {
  ExecutionParams params;
  params.randomization = {0.9, 0.6};
  params.sampling_fraction = 0.6;
  EXPECT_GT(PredictAccuracyLoss(params, 1000, 0.6),
            PredictAccuracyLoss(params, 1000000, 0.6));
}

TEST(PredictAccuracyLossTest, RejectsEmptyPopulation) {
  EXPECT_THROW(PredictAccuracyLoss(ExecutionParams{}, 0, 0.5),
               std::invalid_argument);
}

TEST(BudgetInitializerTest, DefaultBudgetIsFullSampling) {
  const BudgetInitializer initializer;
  const ExecutionParams params =
      initializer.Convert(QueryBudget{}, PopulationInfo{10000, 0.6});
  EXPECT_DOUBLE_EQ(params.sampling_fraction, 1.0);
  EXPECT_NEAR(params.randomization.q, 0.6, 1e-12);  // centered on prior
}

TEST(BudgetInitializerTest, QClampedToSafeRange) {
  const BudgetInitializer initializer;
  EXPECT_NEAR(initializer.Convert(QueryBudget{}, PopulationInfo{100, 0.01})
                  .randomization.q,
              0.1, 1e-12);
  EXPECT_NEAR(initializer.Convert(QueryBudget{}, PopulationInfo{100, 0.99})
                  .randomization.q,
              0.9, 1e-12);
}

TEST(BudgetInitializerTest, PrivacyCapIsHonored) {
  const BudgetInitializer initializer;
  QueryBudget budget;
  budget.max_epsilon = 1.0;
  const ExecutionParams params =
      initializer.Convert(budget, PopulationInfo{100000, 0.5});
  const double achieved = AmplifyBySampling(EpsilonDp(params.randomization),
                                            params.sampling_fraction);
  EXPECT_LE(achieved, 1.0 + 1e-9);
}

TEST(BudgetInitializerTest, ResourceCapBoundsSampling) {
  const BudgetInitializer initializer;
  QueryBudget budget;
  budget.max_answers = 5000;
  const ExecutionParams params =
      initializer.Convert(budget, PopulationInfo{100000, 0.5});
  EXPECT_NEAR(params.sampling_fraction, 0.05, 1e-9);
}

TEST(BudgetInitializerTest, LatencyCapBoundsSampling) {
  const BudgetInitializer initializer;
  QueryBudget budget;
  budget.max_latency_ms = 10.0;
  budget.answers_per_ms = 100.0;  // at most 1000 answers
  const ExecutionParams params =
      initializer.Convert(budget, PopulationInfo{100000, 0.5});
  EXPECT_NEAR(params.sampling_fraction, 0.01, 1e-9);
}

TEST(BudgetInitializerTest, AccuracyCapPicksCheapestSampling) {
  const BudgetInitializer initializer;
  QueryBudget budget;
  budget.max_accuracy_loss = 0.05;
  const ExecutionParams params =
      initializer.Convert(budget, PopulationInfo{1000000, 0.5});
  EXPECT_LT(params.sampling_fraction, 1.0);  // did not need a census
  EXPECT_LE(
      PredictAccuracyLoss(params, 1000000, 0.5),
      0.05 + 1e-9);
}

TEST(BudgetInitializerTest, ConflictingCapsKeepResourceBound) {
  // Accuracy wants lots of samples; the resource cap forbids it. The cap
  // must win (privacy/resources are hard constraints).
  const BudgetInitializer initializer;
  QueryBudget budget;
  budget.max_accuracy_loss = 1e-6;
  budget.max_answers = 100;
  const ExecutionParams params =
      initializer.Convert(budget, PopulationInfo{100000, 0.5});
  // 100/100000 would be s = 0.001, floored at the initializer's minimum
  // workable sampling fraction (0.01); the accuracy cap must not raise it.
  EXPECT_NEAR(params.sampling_fraction, 0.01, 1e-9);
}

TEST(BudgetInitializerTest, RejectsEmptyPopulation) {
  const BudgetInitializer initializer;
  EXPECT_THROW(initializer.Convert(QueryBudget{}, PopulationInfo{0, 0.5}),
               std::invalid_argument);
}

TEST(FeedbackControllerTest, RaisesSamplingWhenErrorTooHigh) {
  ExecutionParams initial;
  initial.sampling_fraction = 0.4;
  FeedbackController controller(initial, /*target_accuracy_loss=*/0.05);
  const ExecutionParams& next = controller.OnEpochCompleted(0.2);
  EXPECT_GT(next.sampling_fraction, 0.4);
}

TEST(FeedbackControllerTest, DecaysSamplingWhenComfortable) {
  ExecutionParams initial;
  initial.sampling_fraction = 0.8;
  FeedbackController controller(initial, 0.05);
  const ExecutionParams& next = controller.OnEpochCompleted(0.001);
  EXPECT_LT(next.sampling_fraction, 0.8);
}

TEST(FeedbackControllerTest, HoldsInsideDeadband) {
  ExecutionParams initial;
  initial.sampling_fraction = 0.5;
  FeedbackController controller(initial, 0.05);
  const ExecutionParams& next = controller.OnEpochCompleted(0.04);
  EXPECT_DOUBLE_EQ(next.sampling_fraction, 0.5);
}

TEST(FeedbackControllerTest, NeverExceedsPrivacyCap) {
  ExecutionParams initial;
  initial.sampling_fraction = 0.2;
  initial.randomization = {0.9, 0.6};
  const double cap = 2.0;
  FeedbackController controller(initial, 0.001, cap);
  // Repeatedly report terrible accuracy; s wants to grow to 1 but the cap
  // must hold it down.
  for (int epoch = 0; epoch < 20; ++epoch) {
    const ExecutionParams& params = controller.OnEpochCompleted(0.5);
    const double eps = AmplifyBySampling(EpsilonDp(params.randomization),
                                         params.sampling_fraction);
    EXPECT_LE(eps, cap + 1e-9);
  }
}

TEST(FeedbackControllerTest, ConvergesTowardTarget) {
  // Simulate: measured loss ~ c / sqrt(s). Controller should settle at an s
  // whose loss is within [target/2, target].
  ExecutionParams initial;
  initial.sampling_fraction = 0.05;
  FeedbackController controller(initial, 0.05);
  double s = initial.sampling_fraction;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const double measured = 0.02 / std::sqrt(s);
    s = controller.OnEpochCompleted(measured).sampling_fraction;
  }
  const double final_loss = 0.02 / std::sqrt(s);
  EXPECT_LE(final_loss, 0.05 * 1.6);
  EXPECT_GE(final_loss, 0.05 * 0.4);
}

TEST(FeedbackControllerTest, RejectsBadTarget) {
  EXPECT_THROW(FeedbackController(ExecutionParams{}, 0.0),
               std::invalid_argument);
}

// ------------------------------------------- fleet-wide budget manager

ExecutionParams ApproxParams(double s) {
  ExecutionParams params;
  params.sampling_fraction = s;
  params.randomization = {0.9, 0.6};
  return params;
}

TEST(PrivacyBudgetManagerTest, InfiniteCapAdmitsEverythingUnchanged) {
  PrivacyBudgetManager manager;  // default cap: +infinity
  // Even exact-mode parameters (p = 1, infinite eps_dp) are admitted.
  ExecutionParams exact;
  exact.sampling_fraction = 1.0;
  exact.randomization = {1.0, 0.5};
  const BudgetAdmission a = manager.Admit(1, exact);
  EXPECT_FALSE(a.downsampled);
  EXPECT_DOUBLE_EQ(a.params.sampling_fraction, 1.0);
  const BudgetAdmission b = manager.Admit(2, ApproxParams(0.6));
  EXPECT_FALSE(b.downsampled);
  EXPECT_EQ(manager.num_queries(), 2u);
  EXPECT_TRUE(std::isinf(manager.remaining()));
}

TEST(PrivacyBudgetManagerTest, RejectsQidZeroAndDuplicates) {
  PrivacyBudgetManager manager;
  EXPECT_THROW(manager.Admit(0, ApproxParams(0.5)), std::invalid_argument);
  manager.Admit(7, ApproxParams(0.5));
  EXPECT_THROW(manager.Admit(7, ApproxParams(0.3)), std::invalid_argument);
}

TEST(PrivacyBudgetManagerTest, RefusesOverCapWithoutDownsampling) {
  const double eps1 = EpsilonZk({0.9, 0.6}, 0.5);
  BudgetManagerConfig config;
  config.max_epsilon_zk = eps1 + 0.1;  // room for q1, not q2
  config.downsample_to_fit = false;
  PrivacyBudgetManager manager(config);
  manager.Admit(1, ApproxParams(0.5));
  EXPECT_NEAR(manager.spent(), eps1, 1e-12);
  EXPECT_THROW(manager.Admit(2, ApproxParams(0.5)), BudgetExceededError);
  // The refused query left no trace; releasing q1 frees its budget.
  EXPECT_EQ(manager.num_queries(), 1u);
  manager.Release(1);
  EXPECT_NO_THROW(manager.Admit(2, ApproxParams(0.5)));
}

TEST(PrivacyBudgetManagerTest, DownsamplesSecondQueryToFit) {
  const double eps1 = EpsilonZk({0.9, 0.6}, 0.5);
  const double residual = 1.0;
  BudgetManagerConfig config;
  config.max_epsilon_zk = eps1 + residual;
  PrivacyBudgetManager manager(config);
  EXPECT_FALSE(manager.Admit(1, ApproxParams(0.5)).downsampled);
  // q2 wants s = 0.9 (costs far more than the residual): admitted, but at
  // the sampling fraction that exactly spends what is left.
  const BudgetAdmission a = manager.Admit(2, ApproxParams(0.9));
  EXPECT_TRUE(a.downsampled);
  EXPECT_LT(a.params.sampling_fraction, 0.9);
  EXPECT_NEAR(EpsilonZk(a.params.randomization, a.params.sampling_fraction),
              residual, 1e-9);
  // Only s changes under down-sampling; (p, q) are the client's coins.
  EXPECT_DOUBLE_EQ(a.params.randomization.p, 0.9);
  EXPECT_DOUBLE_EQ(a.params.randomization.q, 0.6);
  EXPECT_NEAR(manager.spent(), config.max_epsilon_zk, 1e-9);
  EXPECT_NEAR(manager.remaining(), 0.0, 1e-9);
}

TEST(PrivacyBudgetManagerTest, RefusesWhenFloorStillDoesNotFit) {
  const double eps1 = EpsilonZk({0.9, 0.6}, 0.5);
  BudgetManagerConfig config;
  config.max_epsilon_zk = eps1 + 0.1;
  // At the floor s = 0.5 the second query costs eps1 >> 0.1 residual.
  config.min_sampling_fraction = 0.5;
  PrivacyBudgetManager manager(config);
  manager.Admit(1, ApproxParams(0.5));
  EXPECT_THROW(manager.Admit(2, ApproxParams(0.9)), BudgetExceededError);
}

TEST(PrivacyBudgetManagerTest, RefusesExactModeUnderFiniteCap) {
  // p = 1 has infinite eps_dp: no sampling fraction has a finite cost, so
  // a finite fleet can never admit it.
  BudgetManagerConfig config;
  config.max_epsilon_zk = 10.0;
  PrivacyBudgetManager manager(config);
  ExecutionParams exact;
  exact.sampling_fraction = 0.5;
  exact.randomization = {1.0, 0.5};
  EXPECT_THROW(manager.Admit(1, exact), BudgetExceededError);
}

TEST(PrivacyBudgetManagerTest, UpdateIsAtomicOnRefusal) {
  const double eps_small = EpsilonZk({0.9, 0.6}, 0.3);
  BudgetManagerConfig config;
  config.max_epsilon_zk = eps_small + 0.05;
  config.downsample_to_fit = false;
  PrivacyBudgetManager manager(config);
  manager.Admit(1, ApproxParams(0.3));
  const double spent_before = manager.spent();
  // Re-pricing to a cost over the cap must refuse AND leave the original
  // registration (and its recorded spend) untouched.
  EXPECT_THROW(manager.Update(1, ApproxParams(0.9)), BudgetExceededError);
  EXPECT_TRUE(manager.Has(1));
  EXPECT_DOUBLE_EQ(manager.spent(), spent_before);
  // A fitting re-price goes through.
  EXPECT_NO_THROW(manager.Update(1, ApproxParams(0.2)));
}

}  // namespace
}  // namespace privapprox::core
