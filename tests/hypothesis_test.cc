// Tests for the hypothesis-testing utilities (KS two-sample, chi-square
// GOF, incomplete gamma) and their application to the paper's §4
// commutativity claim.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/randomized_response.h"
#include "stats/hypothesis.h"
#include "stats/special_functions.h"

namespace privapprox::stats {
namespace {

// --------------------------------------------------------- incomplete gamma

TEST(RegularizedGammaTest, KnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.2, 1.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_THROW(RegularizedGammaP(0.0, 1.0), std::invalid_argument);
}

TEST(ChiSquareSurvivalTest, KnownCriticalValues) {
  // Classic chi-square table: P[X > 3.841 | df=1] = 0.05,
  // P[X > 5.991 | df=2] = 0.05, P[X > 18.307 | df=10] = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(5.991, 2), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 3), 1.0);
}

// --------------------------------------------------------------------- KS

TEST(KsTest, IdenticalSamplesHaveHighPValue) {
  Xoshiro256 rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian());
  }
  const TestResult result = KolmogorovSmirnovTwoSample(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(result.statistic, 0.06);
}

TEST(KsTest, ShiftedSamplesRejected) {
  Xoshiro256 rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian() + 0.5);
  }
  const TestResult result = KolmogorovSmirnovTwoSample(a, b);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, StatisticIsExactForDisjointSamples) {
  const TestResult result =
      KolmogorovSmirnovTwoSample({1.0, 2.0, 3.0}, {10.0, 11.0});
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
  EXPECT_LT(result.p_value, 0.2);
}

TEST(KsTest, EmptySampleThrows) {
  EXPECT_THROW(KolmogorovSmirnovTwoSample({}, {1.0}), std::invalid_argument);
}

TEST(KsTest, CommutativityOfSamplingAndRandomization) {
  // The §4 claim, tested properly: the distribution of de-biased estimates
  // is the same whichever order the two mechanisms run in.
  Xoshiro256 rng(3);
  const core::RandomizedResponse rr(core::RandomizationParams{0.7, 0.5});
  const size_t population = 5000;
  const double s = 0.5;
  std::vector<double> order_a, order_b;
  for (int trial = 0; trial < 300; ++trial) {
    size_t n_a = 0, ry_a = 0, n_b = 0, ry_b = 0;
    for (size_t i = 0; i < population; ++i) {
      const bool truth = i < population * 6 / 10;
      if (rng.NextBernoulli(s)) {
        ++n_a;
        ry_a += rr.RandomizeBit(truth, rng) ? 1 : 0;
      }
      const bool randomized = rr.RandomizeBit(truth, rng);
      if (rng.NextBernoulli(s)) {
        ++n_b;
        ry_b += randomized ? 1 : 0;
      }
    }
    order_a.push_back(rr.DebiasCount(ry_a, n_a) / n_a);
    order_b.push_back(rr.DebiasCount(ry_b, n_b) / n_b);
  }
  const TestResult result = KolmogorovSmirnovTwoSample(order_a, order_b);
  EXPECT_GT(result.p_value, 0.01);
}

// -------------------------------------------------------------- chi-square

TEST(ChiSquareGofTest, PerfectFitHasPValueOne) {
  const TestResult result =
      ChiSquareGoodnessOfFit({10.0, 20.0, 30.0}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(ChiSquareGofTest, UniformSamplesFitUniform) {
  Xoshiro256 rng(4);
  std::vector<double> observed(10, 0.0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    observed[rng.NextBounded(10)] += 1.0;
  }
  const std::vector<double> expected(10, n / 10.0);
  const TestResult result = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_GT(result.p_value, 0.001);
}

TEST(ChiSquareGofTest, SkewedSamplesRejected) {
  const std::vector<double> observed = {150.0, 50.0, 100.0};
  const std::vector<double> expected = {100.0, 100.0, 100.0};
  const TestResult result = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquareGofTest, ValidatesInput) {
  EXPECT_THROW(ChiSquareGoodnessOfFit({1.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(ChiSquareGoodnessOfFit({1.0, 2.0}, {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ChiSquareGoodnessOfFit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ChiSquareGoodnessOfFit({1.0, 2.0}, {1.0, 2.0}, 1),
               std::invalid_argument);  // df hits zero
}

}  // namespace
}  // namespace privapprox::stats
