// The socket transport over real loopback TCP: request/response round
// trips, frames arriving one byte per wakeup, peers dying mid-frame,
// corrupt frames being quarantined, control verbs, and client re-dials.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "metrics/metrics.h"
#include "transport/frame.h"
#include "transport/message_bus.h"
#include "transport/tcp_bus.h"
#include "transport/wire.h"

namespace privapprox::transport {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// A raw blocking loopback connection for byte-level protocol abuse.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

  void Send(std::span<const uint8_t> bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  // Reads until `n` bytes or EOF; returns what arrived.
  std::vector<uint8_t> Recv(size_t n) {
    std::vector<uint8_t> out;
    out.reserve(n);
    while (out.size() < n) {
      uint8_t buf[4096];
      const ssize_t got =
          read(fd_, buf, std::min(sizeof(buf), n - out.size()));
      if (got <= 0) {
        break;
      }
      out.insert(out.end(), buf, buf + got);
    }
    return out;
  }

  // True once the peer has closed (read returns 0), polling briefly.
  bool PeerClosed() {
    for (int i = 0; i < 200; ++i) {
      uint8_t byte = 0;
      const ssize_t got = recv(fd_, &byte, 1, MSG_DONTWAIT);
      if (got == 0) {
        return true;
      }
      if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        return true;  // reset also counts as closed
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

 private:
  int fd_ = -1;
};

class TcpBusTest : public ::testing::Test {
 protected:
  void StartServer(ControlHandler control = {}) {
    TcpBusServerConfig config;
    config.counters.accepts =
        &registry_.GetCounter("accepts", "connections accepted");
    config.counters.disconnects =
        &registry_.GetCounter("disconnects", "peers hung up");
    config.counters.protocol_errors =
        &registry_.GetCounter("protocol_errors", "quarantined");
    config.counters.frames_in = &registry_.GetCounter("frames_in", "in");
    config.counters.frames_out = &registry_.GetCounter("frames_out", "out");
    server_ = std::make_unique<TcpBusServer>(config, broker_,
                                             std::move(control));
    server_->Start();
  }

  std::unique_ptr<TcpBusClient> Dial() {
    TcpBusClientConfig config;
    config.port = server_->port();
    config.counters.reconnects =
        &registry_.GetCounter("reconnects", "re-dials");
    return std::make_unique<TcpBusClient>(config);
  }

  uint64_t Counter(const std::string& name) {
    return registry_.GetCounter(name, "").Value();
  }

  // Spins until `counter` reaches `at_least` (the event loop runs on its
  // own thread) or the deadline passes.
  void AwaitCounter(const std::string& name, uint64_t at_least) {
    for (int i = 0; i < 400 && Counter(name) < at_least; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(Counter(name), at_least);
  }

  metrics::Registry registry_;
  broker::Broker broker_;
  std::unique_ptr<TcpBusServer> server_;
};

TEST_F(TcpBusTest, ProduceAndPollRoundTrip) {
  StartServer();
  auto client = Dial();
  client->EnsureTopic("t", 2);
  EXPECT_EQ(client->NumPartitions("t"), 2u);

  std::vector<std::vector<uint8_t>> payloads;
  std::vector<broker::ProduceView> records;
  for (uint64_t key = 0; key < 50; ++key) {
    payloads.push_back(Bytes("record-" + std::to_string(key)));
    records.push_back(broker::ProduceView{key, payloads.back(),
                                          static_cast<int64_t>(key * 10)});
  }
  client->Produce("t", records);

  BusConsumer consumer(*client, "t");
  std::vector<broker::RecordView> out;
  size_t total = 0;
  while (size_t n = consumer.PollInto(16, out)) {
    total += n;
  }
  EXPECT_EQ(total, 50u);
  // Views remain valid for the bus lifetime (client-owned slabs): check one
  // record's bytes after further RPCs recycled the receive buffers.
  client->EndOffset("t", 0);
  bool found = false;
  for (const broker::RecordView& view : out) {
    if (view.key == 7) {
      EXPECT_EQ(std::string(view.payload, view.payload + view.payload_len),
                "record-7");
      EXPECT_EQ(view.timestamp_ms, 70);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TcpBusTest, LargePayloadsSurvivePartialSocketWrites) {
  StartServer();
  auto client = Dial();
  client->EnsureTopic("big", 1);
  // ~6 MiB of records: several times any default socket buffer, so both
  // directions exercise partial writes resumed across epoll wakeups.
  const std::vector<uint8_t> blob(64 * 1024, 0x5A);
  std::vector<broker::ProduceView> records;
  for (uint64_t key = 0; key < 96; ++key) {
    records.push_back(broker::ProduceView{key, blob, 0});
  }
  client->Produce("big", records);
  EXPECT_EQ(client->EndOffset("big", 0), 96u);

  std::vector<broker::RecordView> out;
  uint64_t offset = 0;
  while (offset < 96) {
    const size_t n = client->Poll("big", 0, offset, 96, out);
    ASSERT_GT(n, 0u);
    offset += n;
  }
  ASSERT_EQ(out.size(), 96u);
  for (const broker::RecordView& view : out) {
    ASSERT_EQ(view.payload_len, blob.size());
    EXPECT_EQ(view.payload[blob.size() - 1], 0x5A);
  }
}

TEST_F(TcpBusTest, FrameDribbledBytewiseStillParses) {
  StartServer();
  std::vector<uint8_t> request;
  BuildEnsureTopicRequest("dribble", 1, request);
  std::vector<uint8_t> framed;
  EncodeFrame(request, framed);

  RawConn conn(server_->port());
  // One byte per write: the server sees a partial header/payload on nearly
  // every wakeup and must keep accumulating.
  for (const uint8_t byte : framed) {
    conn.Send(std::span<const uint8_t>(&byte, 1));
  }
  // A complete response frame (kWireOk body) comes back.
  const std::vector<uint8_t> header = conn.Recv(kFrameHeaderBytes);
  ASSERT_EQ(header.size(), kFrameHeaderBytes);
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  const std::vector<uint8_t> body = conn.Recv(len);
  ASSERT_EQ(body.size(), len);
  ASSERT_GE(body.size(), 1u);
  EXPECT_EQ(body[0], kWireOk);
  EXPECT_EQ(broker_.GetTopic("dribble").num_partitions(), 1u);
}

TEST_F(TcpBusTest, PeerDisconnectMidFrameIsCountedNotFatal) {
  StartServer();
  {
    std::vector<uint8_t> request;
    BuildEnsureTopicRequest("t", 1, request);
    std::vector<uint8_t> framed;
    EncodeFrame(request, framed);
    RawConn conn(server_->port());
    // Half a frame, then vanish.
    conn.Send(std::span<const uint8_t>(framed.data(), framed.size() / 2));
    conn.Close();
  }
  AwaitCounter("disconnects", 1);
  // The server survived: a fresh client works and the half frame never
  // executed.
  auto client = Dial();
  client->EnsureTopic("alive", 1);
  EXPECT_EQ(client->NumPartitions("alive"), 1u);
  EXPECT_THROW(broker_.GetTopic("t"), std::invalid_argument);
}

TEST_F(TcpBusTest, CorruptFrameQuarantinesConnection) {
  StartServer();
  std::vector<uint8_t> request;
  BuildEnsureTopicRequest("corrupt", 1, request);
  std::vector<uint8_t> framed;
  EncodeFrame(request, framed);
  framed.back() ^= 0xFF;  // breaks the CRC

  RawConn conn(server_->port());
  conn.Send(framed);
  AwaitCounter("protocol_errors", 1);
  EXPECT_TRUE(conn.PeerClosed());
  // The corrupted request was never executed.
  EXPECT_THROW(broker_.GetTopic("corrupt"), std::invalid_argument);
  // And the server still serves new connections.
  auto client = Dial();
  client->EnsureTopic("alive", 1);
}

TEST_F(TcpBusTest, OversizedLengthPrefixQuarantinesConnection) {
  StartServer();
  // 8-byte header claiming a 1 GiB payload.
  std::vector<uint8_t> header(kFrameHeaderBytes, 0);
  const uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) {
    header[static_cast<size_t>(i)] = static_cast<uint8_t>(huge >> (8 * i));
  }
  RawConn conn(server_->port());
  conn.Send(header);
  AwaitCounter("protocol_errors", 1);
  EXPECT_TRUE(conn.PeerClosed());
}

TEST_F(TcpBusTest, ControlVerbsRoundTripAndPropagateErrors) {
  StartServer([](const std::string& verb, std::span<const uint8_t> payload) {
    if (verb == "echo") {
      return std::vector<uint8_t>(payload.begin(), payload.end());
    }
    throw std::invalid_argument("no verb '" + verb + "'");
  });
  auto client = Dial();
  const std::vector<uint8_t> payload = Bytes("payload");
  EXPECT_EQ(client->Control("echo", payload), payload);
  try {
    client->Control("bogus", {});
    FAIL() << "expected remote error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no verb 'bogus'"),
              std::string::npos)
        << e.what();
  }
  // The error poisoned nothing: the connection still serves requests.
  EXPECT_EQ(client->Control("echo", payload), payload);
}

TEST_F(TcpBusTest, ClientRedialsAfterServerRestartAndCountsIt) {
  StartServer();
  const uint16_t port = server_->port();
  auto client = Dial();
  client->EnsureTopic("before", 1);
  EXPECT_EQ(Counter("reconnects"), 0u);

  // Bounce the server on the same port (topics live in the same broker, so
  // state survives the restart like a daemon restarting its listener).
  server_.reset();
  TcpBusServerConfig config;
  config.port = port;
  server_ = std::make_unique<TcpBusServer>(config, broker_);
  server_->Start();

  // The dead connection throws once, then the next call re-dials.
  try {
    client->EnsureTopic("during", 1);
  } catch (const std::exception&) {
  }
  client->EnsureTopic("after", 1);
  EXPECT_EQ(client->NumPartitions("before"), 1u);
  EXPECT_GE(Counter("reconnects"), 1u);
}

}  // namespace
}  // namespace privapprox::transport
