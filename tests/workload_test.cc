// Tests for the workload generators: synthetic answer populations and the
// two case-study generators (NYC taxi, household electricity).

#include <gtest/gtest.h>

#include <cmath>

#include "workload/electricity.h"
#include "workload/synthetic.h"
#include "workload/taxi.h"

namespace privapprox::workload {
namespace {

TEST(BinaryAnswersTest, ExactYesCount) {
  Xoshiro256 rng(1);
  const auto answers = BinaryAnswers(10000, 0.6, rng);
  EXPECT_EQ(answers.size(), 10000u);
  size_t yes = 0;
  for (bool a : answers) {
    yes += a ? 1 : 0;
  }
  EXPECT_EQ(yes, 6000u);
}

TEST(BinaryAnswersTest, ShuffledNotSorted) {
  Xoshiro256 rng(2);
  const auto answers = BinaryAnswers(1000, 0.5, rng);
  // If sorted, the first 500 would all be yes.
  size_t yes_in_first_half = 0;
  for (size_t i = 0; i < 500; ++i) {
    yes_in_first_half += answers[i] ? 1 : 0;
  }
  EXPECT_GT(yes_in_first_half, 150u);
  EXPECT_LT(yes_in_first_half, 350u);
}

TEST(BinaryAnswersTest, EdgeFractions) {
  Xoshiro256 rng(3);
  for (bool a : BinaryAnswers(100, 0.0, rng)) {
    EXPECT_FALSE(a);
  }
  for (bool a : BinaryAnswers(100, 1.0, rng)) {
    EXPECT_TRUE(a);
  }
  EXPECT_THROW(BinaryAnswers(10, 1.5, rng), std::invalid_argument);
}

TEST(BucketAnswersTest, OneHotWithGivenDistribution) {
  Xoshiro256 rng(4);
  const std::vector<double> probs = {0.5, 0.3, 0.2};
  const auto answers = BucketAnswers(30000, probs, rng);
  const Histogram counts = ExactCounts(answers, 3);
  EXPECT_NEAR(counts.Count(0) / 30000.0, 0.5, 0.02);
  EXPECT_NEAR(counts.Count(1) / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts.Count(2) / 30000.0, 0.2, 0.02);
  for (const auto& a : answers) {
    EXPECT_EQ(a.PopCount(), 1u);
  }
}

TEST(BucketAnswersTest, NormalizesWeights) {
  Xoshiro256 rng(5);
  const auto answers = BucketAnswers(10000, {5.0, 5.0}, rng);
  const Histogram counts = ExactCounts(answers, 2);
  EXPECT_NEAR(counts.Count(0) / 10000.0, 0.5, 0.03);
}

TEST(BucketAnswersTest, RejectsBadInput) {
  Xoshiro256 rng(6);
  EXPECT_THROW(BucketAnswers(10, {}, rng), std::invalid_argument);
  EXPECT_THROW(BucketAnswers(10, {0.0, 0.0}, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------- taxi

TEST(TaxiGeneratorTest, FirstBucketFractionMatchesPaper) {
  // §7.2 #III: "the fraction of truthful 'Yes' answers in the dataset is
  // 33.57%" for the [0, 1) mile bucket.
  TaxiGenerator generator(7);
  size_t in_first_bucket = 0;
  const size_t n = 200000;
  for (size_t i = 0; i < n; ++i) {
    if (generator.NextRide(0, 1000).distance_miles < 1.0) {
      ++in_first_bucket;
    }
  }
  EXPECT_NEAR(static_cast<double>(in_first_bucket) / n, 0.3357, 0.01);
}

TEST(TaxiGeneratorTest, TrueBucketProbabilitiesSumToOne) {
  const auto probs = TaxiGenerator::TrueBucketProbabilities();
  ASSERT_EQ(probs.size(), 11u);
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(probs[0], 0.3357, 0.005);
}

TEST(TaxiGeneratorTest, EmpiricalDistributionMatchesClosedForm) {
  TaxiGenerator generator(8);
  const auto probs = TaxiGenerator::TrueBucketProbabilities();
  const auto format = TaxiGenerator::DistanceBuckets();
  std::vector<size_t> counts(11, 0);
  const size_t n = 200000;
  for (size_t i = 0; i < n; ++i) {
    const auto bucket =
        format.BucketOf(generator.NextRide(0, 10).distance_miles);
    ASSERT_TRUE(bucket.has_value());
    counts[*bucket]++;
  }
  for (size_t b = 0; b < 11; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / n, probs[b], 0.01)
        << "bucket " << b;
  }
}

TEST(TaxiGeneratorTest, PopulateClientFillsTable) {
  TaxiGenerator generator(9);
  localdb::Database db;
  generator.PopulateClient(db, 25, 0, 10000);
  const auto& table = db.GetTable("rides");
  EXPECT_EQ(table.num_rows(), 25u);
  const auto values = db.Execute("SELECT distance FROM rides");
  EXPECT_EQ(values.size(), 25u);
  for (const auto& v : values) {
    EXPECT_GT(v.AsDouble(), 0.0);
  }
  // Populating again appends.
  generator.PopulateClient(db, 5, 0, 10000);
  EXPECT_EQ(table.num_rows(), 30u);
}

TEST(TaxiGeneratorTest, QueryIsWellFormed) {
  const core::Query query = TaxiGenerator::MakeDistanceQuery(1, 60000, 10000);
  EXPECT_TRUE(query.VerifySignature());
  EXPECT_EQ(query.answer_format.num_buckets(), 11u);
  EXPECT_EQ(query.sql, "SELECT distance FROM rides");
}

TEST(TaxiGeneratorTest, RidesHavePlausibleFields) {
  TaxiGenerator generator(10);
  for (int i = 0; i < 100; ++i) {
    const TaxiRide ride = generator.NextRide(500, 1500);
    EXPECT_GE(ride.pickup_ms, 500);
    EXPECT_LT(ride.pickup_ms, 1500);
    EXPECT_FALSE(ride.borough.empty());
  }
}

// --------------------------------------------------------------- electricity

TEST(ElectricityGeneratorTest, ConsumptionWithinPhysicalRange) {
  ElectricityGenerator generator(11);
  for (int i = 0; i < 10000; ++i) {
    const double kwh = generator.NextConsumptionKwh();
    EXPECT_GE(kwh, 0.0);
    EXPECT_LE(kwh, 3.0);
  }
}

TEST(ElectricityGeneratorTest, MeanNearModel) {
  ElectricityGenerator generator(12);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += generator.NextConsumptionKwh();
  }
  EXPECT_NEAR(sum / n, 1.1, 0.05);
}

TEST(ElectricityGeneratorTest, WindowedSumLandsInBuckets) {
  ElectricityGenerator generator(13);
  localdb::Database db;
  const int64_t window = 30 * 60 * 1000;
  generator.PopulateClient(db, 0, window, 60 * 1000);  // 30 readings
  const auto values = db.Execute("SELECT SUM(kwh) FROM meter", 0, window);
  ASSERT_EQ(values.size(), 1u);
  const double total = values[0].AsDouble();
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, 3.0);
  EXPECT_TRUE(
      ElectricityGenerator::UsageBuckets().BucketOf(total).has_value());
}

TEST(ElectricityGeneratorTest, QueryIsWellFormed) {
  const core::Query query =
      ElectricityGenerator::MakeUsageQuery(2, 30 * 60 * 1000, 60 * 1000);
  EXPECT_TRUE(query.VerifySignature());
  EXPECT_EQ(query.answer_format.num_buckets(), 6u);
}

TEST(ElectricityGeneratorTest, SmallerAnswerThanTaxi) {
  // The property Figs 8-9 rely on: electricity answers are smaller.
  EXPECT_LT(ElectricityGenerator::UsageBuckets().num_buckets(),
            TaxiGenerator::DistanceBuckets().num_buckets());
}

}  // namespace
}  // namespace privapprox::workload
