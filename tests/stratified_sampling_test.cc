// Tests for the client-side stratified sampling extension (tech report /
// §3.2.1): plan construction and allocation, per-stratum participation, and
// the stratified query estimator's unbiasedness and variance advantage over
// plain SRS on skewed strata.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error_estimation.h"
#include "core/stratified_sampling.h"

namespace privapprox::core {
namespace {

TEST(StratifiedPlanTest, Validation) {
  EXPECT_THROW(StratifiedExecutionPlan({}), std::invalid_argument);
  EXPECT_THROW(StratifiedExecutionPlan({Stratum{0, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(StratifiedExecutionPlan({Stratum{10, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(StratifiedExecutionPlan({Stratum{10, 1.5}}),
               std::invalid_argument);
  const StratifiedExecutionPlan plan({Stratum{10, 0.5}, Stratum{20, 1.0}});
  EXPECT_EQ(plan.num_strata(), 2u);
  EXPECT_THROW(plan.stratum(2), std::out_of_range);
}

TEST(StratifiedPlanTest, ProportionalAllocation) {
  const StratifiedExecutionPlan plan =
      StratifiedExecutionPlan::Proportional({1000, 3000}, 2000);
  // 2000 answers over 4000 clients -> every stratum sampled at 0.5.
  EXPECT_NEAR(plan.stratum(0).sampling_fraction, 0.5, 1e-12);
  EXPECT_NEAR(plan.stratum(1).sampling_fraction, 0.5, 1e-12);
  EXPECT_NEAR(plan.ExpectedAnswers(), 2000.0, 1e-9);
  // Budget above the population caps at a census.
  const StratifiedExecutionPlan census =
      StratifiedExecutionPlan::Proportional({100, 100}, 10000);
  EXPECT_NEAR(census.stratum(0).sampling_fraction, 1.0, 1e-12);
}

TEST(StratifiedPlanTest, ParticipationMatchesStratumFraction) {
  const StratifiedExecutionPlan plan({Stratum{100, 0.2}, Stratum{100, 0.9}});
  Xoshiro256 rng(1);
  int in0 = 0, in1 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    in0 += plan.ShouldParticipate(0, rng) ? 1 : 0;
    in1 += plan.ShouldParticipate(1, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(in0) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(in1) / n, 0.9, 0.01);
}

// Simulates one epoch over a two-stratum population with different
// yes-fractions; returns per-stratum windows plus the true total yes count.
struct SimResult {
  std::vector<StratifiedQueryEstimator::StratumWindow> windows;
  double truth = 0.0;
};

SimResult Simulate(const StratifiedExecutionPlan& plan,
                   const RandomizedResponse& rr,
                   const std::vector<double>& yes_fractions,
                   Xoshiro256& rng) {
  SimResult out;
  out.windows.resize(plan.num_strata());
  for (size_t h = 0; h < plan.num_strata(); ++h) {
    auto& window = out.windows[h];
    window.randomized_counts = Histogram(1);
    const size_t u_h = plan.stratum(h).population;
    out.truth += yes_fractions[h] * static_cast<double>(u_h);
    for (size_t i = 0; i < u_h; ++i) {
      if (!plan.ShouldParticipate(h, rng)) {
        continue;
      }
      ++window.participants;
      const bool truthful =
          static_cast<double>(i) < yes_fractions[h] * static_cast<double>(u_h);
      if (rr.RandomizeBit(truthful, rng)) {
        window.randomized_counts.Add(0);
      }
    }
  }
  return out;
}

TEST(StratifiedQueryEstimatorTest, UnbiasedAcrossSkewedStrata) {
  // Stratum 0: 8000 clients, 10% yes; stratum 1: 2000 clients, 90% yes.
  const StratifiedExecutionPlan plan({Stratum{8000, 0.3}, Stratum{2000, 0.9}});
  const RandomizedResponse rr(RandomizationParams{0.7, 0.5});
  const StratifiedQueryEstimator estimator(plan, RandomizationParams{0.7, 0.5});
  Xoshiro256 rng(7);
  double mean = 0.0;
  const int trials = 60;
  double truth = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    const SimResult sim = Simulate(plan, rr, {0.1, 0.9}, rng);
    truth = sim.truth;
    mean += estimator.Estimate(sim.windows)[0].value;
  }
  mean /= trials;
  EXPECT_NEAR(mean, truth, 0.03 * truth);
}

TEST(StratifiedQueryEstimatorTest, CoverageOfConfidenceInterval) {
  const StratifiedExecutionPlan plan({Stratum{5000, 0.4}, Stratum{5000, 0.4}});
  const RandomizedResponse rr(RandomizationParams{0.8, 0.5});
  const StratifiedQueryEstimator estimator(plan, RandomizationParams{0.8, 0.5});
  Xoshiro256 rng(11);
  int covered = 0;
  const int trials = 100;
  for (int trial = 0; trial < trials; ++trial) {
    const SimResult sim = Simulate(plan, rr, {0.3, 0.7}, rng);
    const stats::Estimate est = estimator.Estimate(sim.windows)[0];
    if (sim.truth >= est.Lower() && sim.truth <= est.Upper()) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 88);  // 95% nominal, wide tolerance for 100 trials
}

TEST(StratifiedQueryEstimatorTest, TighterThanPlainSrsOnSkewedStrata) {
  // Same total answers, but stratified bookkeeping: the margin must be
  // smaller because the within-stratum indicator variance is tiny when the
  // strata are internally homogeneous.
  const size_t u0 = 6000, u1 = 4000;
  const StratifiedExecutionPlan plan({Stratum{u0, 0.5}, Stratum{u1, 0.5}});
  const RandomizedResponse rr(RandomizationParams{1.0, 0.5});  // isolate sampling
  const StratifiedQueryEstimator estimator(plan,
                                           RandomizationParams{1.0, 0.5});
  Xoshiro256 rng(13);
  const SimResult sim = Simulate(plan, rr, {0.02, 0.98}, rng);
  const stats::Estimate stratified = estimator.Estimate(sim.windows)[0];

  // Plain SRS over the pooled population with the same answers.
  const ExecutionParams pooled_params = [] {
    ExecutionParams p;
    p.sampling_fraction = 0.5;
    p.randomization = {1.0, 0.5};
    return p;
  }();
  const ErrorEstimator pooled(pooled_params, u0 + u1);
  Histogram counts(1);
  counts.SetCount(0, sim.windows[0].randomized_counts.Count(0) +
                         sim.windows[1].randomized_counts.Count(0));
  const QueryResult srs = pooled.Estimate(
      counts, sim.windows[0].participants + sim.windows[1].participants);

  EXPECT_GT(stratified.error, 0.0);
  EXPECT_LT(stratified.error, srs.buckets[0].estimate.error);
  // Both estimates agree on the value within noise.
  EXPECT_NEAR(stratified.value, srs.buckets[0].estimate.value,
              0.05 * stratified.value);
}

TEST(StratifiedQueryEstimatorTest, ValidatesInput) {
  const StratifiedExecutionPlan plan({Stratum{10, 0.5}});
  EXPECT_THROW(
      StratifiedQueryEstimator(plan, RandomizationParams{0.9, 0.6}, 1.0),
      std::invalid_argument);
  const StratifiedQueryEstimator estimator(plan,
                                           RandomizationParams{0.9, 0.6});
  EXPECT_THROW(estimator.Estimate({}), std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::core
