// Allocation-count regression tests for the zero-copy share path.
//
// This binary links the counting allocator (common/alloc_counter.h), which
// replaces global operator new/delete and counts every heap allocation. Two
// levels of guarantee are pinned down:
//
//   1. Strict zero: after one warm-up pass, the share hot path — arena
//      encode -> slab append -> view poll -> view decode — performs no heap
//      allocation at all in steady state.
//   2. Relative: the view path allocates >= 90% less than the owning
//      (vector-per-payload) path it replaced, measured in the same binary.
//
// The streaming pipeline's per-epoch machinery (channels, stage threads,
// join hash tables) allocates by design; what must not allocate is the
// per-share work these tests drive directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "broker/broker.h"
#include "common/alloc_counter.h"
#include "common/arena.h"
#include "crypto/chacha20.h"
#include "crypto/message.h"
#include "crypto/xor_cipher.h"
#include "proxy/proxy.h"
#include "system/system.h"
#include "transport/inproc_bus.h"
#include "transport/message_bus.h"

namespace privapprox {
namespace {

constexpr size_t kNumShares = 2;
constexpr size_t kAnswerBits = 11;
constexpr size_t kAnswersPerEpoch = 256;
constexpr size_t kEpochs = 8;

crypto::AnswerMessage MakeMessage() {
  BitVector answer(kAnswerBits);
  answer.Set(3, true);
  answer.Set(7, true);
  return crypto::AnswerMessage{0xABCDEF01ULL, answer};
}

TEST(AllocCounterTest, CountsAllocations) {
  const uint64_t before = AllocCounter::Count();
  std::vector<uint8_t>* v = new std::vector<uint8_t>(1024, 1);
  const uint64_t after = AllocCounter::Count();
  EXPECT_GT(after, before);
  delete v;
}

TEST(AllocRegressionTest, SteadyStateSharePathIsAllocationFree) {
  const crypto::AnswerMessage message = MakeMessage();
  const size_t record_len =
      8 + crypto::AnswerMessage::WireSize(message.answer.size());
  crypto::XorSplitter splitter(kNumShares,
                               crypto::ChaCha20Rng::FromSeed(17, 5));

  // The hot path is pinned over the production transport stack: an
  // InProcessBus over a broker topic, drained by a BusConsumer.
  broker::Broker broker;
  broker::Topic& topic = broker.CreateTopic("answers", 4);
  transport::InProcessBus bus(broker);
  // Budget every partition for the whole run: Reserve pre-commits index
  // slots and one contiguous slab run, making in-budget appends
  // allocation-free.
  const size_t total_records = kAnswersPerEpoch * kNumShares * (kEpochs + 1);
  for (size_t p = 0; p < topic.num_partitions(); ++p) {
    topic.Reserve(p, total_records, total_records * record_len);
  }
  transport::BusConsumer consumer(bus, "answers");

  EpochArena arena;
  std::vector<crypto::ShareView> views(kNumShares);
  std::vector<broker::ProduceView> produce;
  produce.reserve(kAnswersPerEpoch * kNumShares);
  std::vector<broker::RecordView> polled;
  polled.reserve(total_records);
  proxy::Proxy::DecodedShares decoded;
  decoded.shares.reserve(total_records);

  const auto run_epoch = [&]() {
    produce.clear();
    for (size_t i = 0; i < kAnswersPerEpoch; ++i) {
      splitter.SplitMessageInto(message, arena, views);
      for (const crypto::ShareView& view : views) {
        produce.push_back(
            broker::ProduceView{view.message_id, view.bytes(), 100});
      }
    }
    topic.AppendViews(produce);
    polled.clear();
    while (consumer.PollInto(4096, polled) != 0) {
    }
    decoded.Clear();
    proxy::Proxy::DecodeShares(polled, decoded);
    arena.Reset();
  };

  run_epoch();  // warm-up: arena chunk, scratch capacity, RNG staging

  const uint64_t before = AllocCounter::Count();
  for (size_t e = 0; e < kEpochs; ++e) {
    run_epoch();
  }
  const uint64_t after = AllocCounter::Count();
  EXPECT_EQ(after - before, 0u)
      << "share hot path allocated " << (after - before) << " times across "
      << kEpochs << " warm epochs";
  EXPECT_EQ(decoded.shares.size(), kAnswersPerEpoch * kNumShares);
  EXPECT_EQ(decoded.malformed, 0u);
}

// The pre-arena owning decode path, reimplemented locally as the comparison
// baseline now that the production API is span-first: one owned vector per
// payload, MID header stripped by erase, bytes moved into a MessageShare.
struct OwnedDecodedBatch {
  std::vector<crypto::MessageShare> shares;
  uint64_t malformed = 0;
};

void DecodeOwnedBatch(std::vector<broker::Record> records,
                      OwnedDecodedBatch& out) {
  out.shares.reserve(out.shares.size() + records.size());
  for (auto& record : records) {
    if (record.payload.size() < 8) {
      ++out.malformed;
      continue;
    }
    crypto::MessageShare share;
    for (int i = 0; i < 8; ++i) {
      share.message_id |= static_cast<uint64_t>(record.payload[i]) << (8 * i);
    }
    record.payload.erase(record.payload.begin(), record.payload.begin() + 8);
    share.payload = std::move(record.payload);
    out.shares.push_back(std::move(share));
  }
}

TEST(AllocRegressionTest, ViewPathAllocatesAtLeast90PercentLess) {
  const crypto::AnswerMessage message = MakeMessage();

  // Owning path: Split -> EncodeShare -> ProduceRecord batch -> owned Poll
  // -> DecodeOwnedBatch. This is what every epoch paid before the arena.
  const auto run_owned = [&](broker::Topic& topic, broker::Consumer& consumer,
                             crypto::XorSplitter& splitter) {
    std::vector<broker::ProduceRecord> records;
    for (size_t i = 0; i < kAnswersPerEpoch; ++i) {
      const auto shares = splitter.Split(message.Serialize());
      for (const crypto::MessageShare& share : shares) {
        records.push_back(broker::ProduceRecord{
            share.message_id, proxy::Proxy::EncodeShare(share), 100});
      }
    }
    topic.AppendBatch(std::move(records));
    OwnedDecodedBatch decoded;
    for (;;) {
      std::vector<broker::Record> batch = consumer.Poll(4096);
      if (batch.empty()) {
        break;
      }
      DecodeOwnedBatch(std::move(batch), decoded);
    }
    return decoded.shares.size();
  };

  broker::Topic owned_topic("owned", 4);
  broker::Consumer owned_consumer(owned_topic);
  crypto::XorSplitter owned_splitter(kNumShares,
                                     crypto::ChaCha20Rng::FromSeed(17, 5));
  run_owned(owned_topic, owned_consumer, owned_splitter);  // warm-up
  const uint64_t owned_before = AllocCounter::Count();
  size_t owned_shares = 0;
  for (size_t e = 0; e < kEpochs; ++e) {
    owned_shares += run_owned(owned_topic, owned_consumer, owned_splitter);
  }
  const uint64_t owned_allocs = AllocCounter::Count() - owned_before;

  // View path: same work, arena + slab views, reusing scratch, drained
  // through the production transport stack (InProcessBus + BusConsumer).
  broker::Broker view_broker;
  broker::Topic& view_topic = view_broker.CreateTopic("views", 4);
  transport::InProcessBus view_bus(view_broker);
  transport::BusConsumer view_consumer(view_bus, "views");
  crypto::XorSplitter view_splitter(kNumShares,
                                    crypto::ChaCha20Rng::FromSeed(17, 5));
  EpochArena arena;
  std::vector<crypto::ShareView> views(kNumShares);
  std::vector<broker::ProduceView> produce;
  std::vector<broker::RecordView> polled;
  proxy::Proxy::DecodedShares decoded;
  const auto run_views = [&]() {
    produce.clear();
    for (size_t i = 0; i < kAnswersPerEpoch; ++i) {
      view_splitter.SplitMessageInto(message, arena, views);
      for (const crypto::ShareView& view : views) {
        produce.push_back(
            broker::ProduceView{view.message_id, view.bytes(), 100});
      }
    }
    view_topic.AppendViews(produce);
    polled.clear();
    while (view_consumer.PollInto(4096, polled) != 0) {
    }
    decoded.Clear();
    proxy::Proxy::DecodeShares(polled, decoded);
    arena.Reset();
  };
  run_views();  // warm-up
  const uint64_t view_before = AllocCounter::Count();
  size_t view_shares = 0;
  for (size_t e = 0; e < kEpochs; ++e) {
    run_views();
    view_shares += decoded.shares.size();
  }
  const uint64_t view_allocs = AllocCounter::Count() - view_before;

  EXPECT_EQ(owned_shares, view_shares);
  // The owning path allocates several times per share; the view path must
  // cut that by at least 90%. (In steady state it is in fact zero — the
  // strict test above — but slab growth for unreserved topics may allocate
  // a handful of chunks here.)
  EXPECT_LE(view_allocs * 10, owned_allocs)
      << "owned=" << owned_allocs << " view=" << view_allocs;
}

// Whole-system sanity: in streaming mode the warm per-epoch allocation
// bill is flat — arenas, slabs, and stage scratch are reused, so epoch N
// and epoch N+1 cost the same. What remains per epoch (localdb query
// execution per client, join groups, stage threads) is bounded work, not
// growth; a reintroduced per-share copy or a leaked warm structure shows
// up here as a rising count. Runs at a given aggregator shard count so the
// sharded feed path proves its scratch (per-shard joiners, window
// accumulators, merge buffers) is reused across epochs too.
void ExpectStreamingEpochAllocationsFlat(size_t agg_shards,
                                         size_t num_queries = 1) {
  system::SystemConfig config;
  config.num_clients = 1024;
  config.num_proxies = kNumShares;
  config.seed = 7;
  config.pipeline.num_worker_threads = 1;
  config.pipeline.mode = system::EpochPipelineMode::kStreaming;
  config.aggregator.num_shards = agg_shards;
  system::PrivApproxSystem system(config);
  for (size_t i = 0; i < config.num_clients; ++i) {
    auto& db = system.client(i).database();
    db.CreateTable("vehicle", {"speed", "temperature"});
    db.GetTable("vehicle").Insert(
        500, {localdb::Value(static_cast<double>((i * 13) % 100)),
              localdb::Value(static_cast<double>((i * 7) % 100))});
  }
  core::Query query =
      core::QueryBuilder()
          .WithId(1)
          .WithSql("SELECT speed FROM vehicle")
          .WithAnswerFormat(core::AnswerFormat::UniformNumeric(0, 100, 10, true))
          .WithFrequencyMs(1000)
          .WithWindowMs(2000)
          .WithSlideMs(1000)
          .Build();
  core::ExecutionParams params;
  params.sampling_fraction = 1.0;
  params.randomization = {0.9, 0.6};
  system.SubmitQuery(query, params);
  if (num_queries == 2) {
    // A second concurrent lane: per-query splitters, lane topics, and
    // aggregator lane state must reuse their warm structures just like the
    // first query's.
    core::Query second =
        core::QueryBuilder()
            .WithId(2)
            .WithSql("SELECT temperature FROM vehicle")
            .WithAnswerFormat(
                core::AnswerFormat::UniformNumeric(0, 100, 10, true))
            .WithFrequencyMs(1000)
            .WithWindowMs(2000)
            .WithSlideMs(1000)
            .Build();
    core::ExecutionParams second_params;
    second_params.sampling_fraction = 0.8;
    second_params.randomization = {0.85, 0.5};
    system.SubmitQuery(second, second_params);
  }

  int64_t now = 1000;
  for (int e = 0; e < 2; ++e) {  // warm-up epochs
    system.RunEpoch(now);
    system.AdvanceWatermark(now);
    now += 1000;
  }
  std::vector<uint64_t> per_epoch;
  for (int e = 0; e < 4; ++e) {
    const uint64_t before = AllocCounter::Count();
    system::EpochStats stats = system.RunEpoch(now);
    per_epoch.push_back(AllocCounter::Count() - before);
    ASSERT_GT(stats.shares_sent, 0u);
    system.AdvanceWatermark(now);
    now += 1000;
  }
  const uint64_t lo = *std::min_element(per_epoch.begin(), per_epoch.end());
  const uint64_t hi = *std::max_element(per_epoch.begin(), per_epoch.end());
  // Warm epochs must cost the same +-5%: the share path reuses arenas and
  // slabs, so any epoch-over-epoch growth means warm state is being dropped
  // and reallocated (or a per-share copy crept back in).
  EXPECT_LE(hi - lo, lo / 20 + 64)
      << "per-epoch allocations drifted: min=" << lo << " max=" << hi;
}

TEST(AllocRegressionTest, StreamingEpochAllocationsStayFlat) {
  ExpectStreamingEpochAllocationsFlat(1);
}

TEST(AllocRegressionTest, ShardedStreamingEpochAllocationsStayFlat) {
  ExpectStreamingEpochAllocationsFlat(2);
}

TEST(AllocRegressionTest, TwoQueryStreamingEpochAllocationsStayFlat) {
  ExpectStreamingEpochAllocationsFlat(1, /*num_queries=*/2);
}

}  // namespace
}  // namespace privapprox
