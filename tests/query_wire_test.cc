// Tests for the query-announcement wire format and the broker-routed query
// distribution path (analyst -> aggregator -> proxies -> clients).

#include <gtest/gtest.h>

#include "broker/broker.h"
#include "client/client.h"
#include "core/query_wire.h"
#include "proxy/proxy.h"

namespace privapprox::core {
namespace {

Query MakeQuery() {
  std::vector<Bucket> buckets;
  buckets.push_back(NumericBucket{0.0, 1.5});
  buckets.push_back(NumericBucket{1.5, std::numeric_limits<double>::infinity()});
  buckets.push_back(MatchBucket{"exact", false});
  buckets.push_back(MatchBucket{"wild*", true});
  return QueryBuilder()
      .WithId(0xABCDEF0123456789ULL)
      .WithAnalyst(7)
      .WithSql("SELECT distance FROM rides WHERE borough = 'queens'")
      .WithAnswerFormat(AnswerFormat(std::move(buckets)))
      .WithFrequencyMs(500)
      .WithWindowMs(60000)
      .WithSlideMs(15000)
      .Build();
}

ExecutionParams MakeParams() {
  ExecutionParams params;
  params.sampling_fraction = 0.37;
  params.randomization = {0.81, 0.62};
  return params;
}

TEST(QueryWireTest, RoundTripPreservesEverything) {
  const QueryAnnouncement original{MakeQuery(), MakeParams()};
  const QueryAnnouncement parsed =
      DeserializeAnnouncement(SerializeAnnouncement(original));
  EXPECT_EQ(parsed, original);
  // Bucket semantics survive, not just counts.
  EXPECT_EQ(parsed.query.answer_format.BucketOf(1.0).value(), 0u);
  EXPECT_EQ(parsed.query.answer_format.BucketOf(99.0).value(), 1u);
  EXPECT_EQ(parsed.query.answer_format.BucketOf(std::string("exact")).value(),
            2u);
  EXPECT_EQ(
      parsed.query.answer_format.BucketOf(std::string("wildcat")).value(),
      3u);
}

TEST(QueryWireTest, SignatureSurvivesRoundTrip) {
  const QueryAnnouncement original{MakeQuery(), MakeParams()};
  const QueryAnnouncement parsed =
      DeserializeAnnouncement(SerializeAnnouncement(original));
  EXPECT_TRUE(parsed.query.VerifySignature());
}

TEST(QueryWireTest, TamperedSqlFailsSignatureAfterParse) {
  QueryAnnouncement ann{MakeQuery(), MakeParams()};
  auto bytes = SerializeAnnouncement(ann);
  // Flip a byte inside the SQL text region (search for 'rides').
  const std::string needle = "rides";
  const auto it = std::search(bytes.begin(), bytes.end(), needle.begin(),
                              needle.end());
  ASSERT_NE(it, bytes.end());
  *it ^= 0x01;
  const QueryAnnouncement parsed = DeserializeAnnouncement(bytes);
  EXPECT_FALSE(parsed.query.VerifySignature());
}

TEST(QueryWireTest, TruncationThrows) {
  const auto bytes =
      SerializeAnnouncement(QueryAnnouncement{MakeQuery(), MakeParams()});
  for (size_t keep : {size_t{0}, size_t{3}, size_t{6}, size_t{20}, bytes.size() - 1}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(DeserializeAnnouncement(truncated), WireError)
        << "keep=" << keep;
  }
}

TEST(QueryWireTest, BadMagicAndVersionThrow) {
  auto bytes =
      SerializeAnnouncement(QueryAnnouncement{MakeQuery(), MakeParams()});
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(DeserializeAnnouncement(bad_magic), WireError);
  auto bad_version = bytes;
  bad_version[4] = 0xEE;
  EXPECT_THROW(DeserializeAnnouncement(bad_version), WireError);
}

TEST(QueryWireTest, GarbageThrows) {
  EXPECT_THROW(DeserializeAnnouncement(std::vector<uint8_t>{}), WireError);
  EXPECT_THROW(
      DeserializeAnnouncement(std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}),
      WireError);
}

TEST(QueryDistributionTest, AnnouncementReachesClientThroughProxy) {
  broker::Broker b;
  proxy::Proxy proxy(proxy::ProxyConfig{0, 2}, b);
  const QueryAnnouncement ann{MakeQuery(), MakeParams()};
  proxy.AnnounceQuery(SerializeAnnouncement(ann), 0);
  EXPECT_EQ(proxy.ForwardQueries(), 1u);

  broker::Consumer consumer(b.GetTopic(proxy.query_out_topic()));
  const auto records = consumer.Poll(4);
  ASSERT_EQ(records.size(), 1u);

  client::Client client(client::ClientConfig{0, 2, 1});
  client.OnAnnouncement(records[0].payload);
  EXPECT_TRUE(client.subscribed());
  EXPECT_EQ(client.query().query_id, ann.query.query_id);
}

TEST(QueryDistributionTest, ClientRejectsTamperedAnnouncement) {
  client::Client client(client::ClientConfig{0, 2, 1});
  auto bytes =
      SerializeAnnouncement(QueryAnnouncement{MakeQuery(), MakeParams()});
  const std::string needle = "SELECT";
  const auto it = std::search(bytes.begin(), bytes.end(), needle.begin(),
                              needle.end());
  ASSERT_NE(it, bytes.end());
  *it ^= 0x01;
  EXPECT_THROW(client.OnAnnouncement(bytes), std::invalid_argument);
  EXPECT_FALSE(client.subscribed());
}

TEST(QueryDistributionTest, ClientRejectsMalformedAnnouncement) {
  client::Client client(client::ClientConfig{0, 2, 1});
  EXPECT_THROW(client.OnAnnouncement({0xDE, 0xAD}), WireError);
}

TEST(TaggedShareTest, RoundTripsQidMidAndPayload) {
  // Lane record: MID (8 B LE) followed by the encrypted payload.
  std::vector<uint8_t> lane_record(8 + 3);
  const uint64_t mid = 0x0123456789ABCDEFULL;
  for (size_t i = 0; i < 8; ++i) {
    lane_record[i] = static_cast<uint8_t>(mid >> (8 * i));
  }
  lane_record[8] = 0xAA;
  lane_record[9] = 0xBB;
  lane_record[10] = 0xCC;
  const std::vector<uint8_t> frame = SerializeTaggedShare(42, lane_record);
  ASSERT_EQ(frame.size(), lane_record.size() + 8);
  const TaggedShareView view = ParseTaggedShare(frame);
  EXPECT_EQ(view.query_id, 42u);
  EXPECT_EQ(view.message_id, mid);
  ASSERT_EQ(view.payload.size(), 3u);
  EXPECT_EQ(view.payload[0], 0xAA);
  // The lane_record span is the frame minus the QID header — byte-for-byte
  // what a per-lane Receive path expects.
  ASSERT_EQ(view.lane_record.size(), lane_record.size());
  EXPECT_TRUE(std::equal(lane_record.begin(), lane_record.end(),
                         view.lane_record.begin()));
}

TEST(TaggedShareTest, RejectsTruncatedFrames) {
  // Shorter than QID + MID headers: unparseable.
  EXPECT_THROW(ParseTaggedShare(std::vector<uint8_t>(15, 0)), WireError);
  // A lane record without even its own MID header cannot be framed.
  EXPECT_THROW(SerializeTaggedShare(1, std::vector<uint8_t>(7, 0)),
               WireError);
}

TEST(QueryDistributionTest, ClientRejectsInvalidParams) {
  client::Client client(client::ClientConfig{0, 2, 1});
  QueryAnnouncement ann{MakeQuery(), MakeParams()};
  ann.params.sampling_fraction = 1.7;  // invalid
  EXPECT_THROW(client.OnAnnouncement(SerializeAnnouncement(ann)),
               std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::core
