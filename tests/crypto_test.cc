// Tests for the crypto substrate: ChaCha20 (against the RFC 8439 test
// vector), XOR share splitting, message framing, and the three public-key
// comparators (round-trips + homomorphic properties).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "common/arena.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "crypto/chacha20.h"
#include "crypto/chacha20_simd.h"
#include "crypto/goldwasser_micali.h"
#include "crypto/message.h"
#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "crypto/xor_cipher.h"
#include "proxy/proxy.h"

namespace privapprox::crypto {
namespace {

// ----------------------------------------------------------------- ChaCha20

TEST(ChaCha20Test, Rfc8439BlockTestVector) {
  // RFC 8439 §2.3.2 test vector.
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  const std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                         0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = ChaCha20Block(key, nonce, 1);
  const std::array<uint8_t, 16> expected_head = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15,
      0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71, 0xc4};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(block[i], expected_head[i]) << "byte " << i;
  }
  // Last four bytes of the RFC keystream block (".. a2 50 3c 4e").
  EXPECT_EQ(block[60], 0xa2);
  EXPECT_EQ(block[61], 0x50);
  EXPECT_EQ(block[62], 0x3c);
  EXPECT_EQ(block[63], 0x4e);
}

TEST(ChaCha20Test, Rfc8439AppendixA1Vectors) {
  // RFC 8439 A.1 test vector #1: all-zero key and nonce, counter 0.
  std::array<uint8_t, 32> key{};
  std::array<uint8_t, 12> nonce{};
  const auto block = ChaCha20Block(key, nonce, 0);
  const std::array<uint8_t, 16> expected_head = {
      0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90,
      0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86, 0xbd, 0x28};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(block[i], expected_head[i]) << "byte " << i;
  }
  // A.1 #2: same key/nonce, counter 1: keystream begins 9f 07 e7 be.
  const auto block1 = ChaCha20Block(key, nonce, 1);
  EXPECT_EQ(block1[0], 0x9f);
  EXPECT_EQ(block1[1], 0x07);
  EXPECT_EQ(block1[2], 0xe7);
  EXPECT_EQ(block1[3], 0xbe);
}

TEST(ChaCha20Test, Rfc8439Section242EncryptionVector) {
  // RFC 8439 §2.4.2: the "sunscreen" plaintext encrypted under key
  // 00 01 .. 1f, nonce 00..00 4a 00 00 00 00, initial counter 1. ChaCha20
  // encryption is plaintext XOR keystream, so this pins down both the block
  // function and multi-block counter sequencing.
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  const std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                         0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  ASSERT_EQ(plaintext.size(), 114u);
  std::array<uint8_t, 128> keystream;
  ChaCha20BlocksInto(keystream.data(), key, nonce, 1, 2);
  std::vector<uint8_t> ciphertext(plaintext.size());
  for (size_t i = 0; i < plaintext.size(); ++i) {
    ciphertext[i] = static_cast<uint8_t>(plaintext[i]) ^ keystream[i];
  }
  const std::vector<uint8_t> expected = {
      0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07,
      0x28, 0xdd, 0x0d, 0x69, 0x81, 0xe9, 0x7e, 0x7a, 0xec, 0x1d, 0x43,
      0x60, 0xc2, 0x0a, 0x27, 0xaf, 0xcc, 0xfd, 0x9f, 0xae, 0x0b, 0xf9,
      0x1b, 0x65, 0xc5, 0x52, 0x47, 0x33, 0xab, 0x8f, 0x59, 0x3d, 0xab,
      0xcd, 0x62, 0xb3, 0x57, 0x16, 0x39, 0xd6, 0x24, 0xe6, 0x51, 0x52,
      0xab, 0x8f, 0x53, 0x0c, 0x35, 0x9f, 0x08, 0x61, 0xd8, 0x07, 0xca,
      0x0d, 0xbf, 0x50, 0x0d, 0x6a, 0x61, 0x56, 0xa3, 0x8e, 0x08, 0x8a,
      0x22, 0xb6, 0x5e, 0x52, 0xbc, 0x51, 0x4d, 0x16, 0xcc, 0xf8, 0x06,
      0x81, 0x8c, 0xe9, 0x1a, 0xb7, 0x79, 0x37, 0x36, 0x5a, 0xf9, 0x0b,
      0xbf, 0x74, 0xa3, 0x5b, 0xe6, 0xb4, 0x0b, 0x8e, 0xed, 0xf2, 0x78,
      0x5e, 0x42, 0x87, 0x4d};
  EXPECT_EQ(ciphertext, expected);
}

// ----------------------------------------------------- ChaCha20 SIMD engine

TEST(ChaCha20SimdTest, ScalarIsaIsAlwaysAvailable) {
  const auto isas = simd::AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  // The dispatched default must be one of the available ISAs.
  EXPECT_TRUE(std::find(isas.begin(), isas.end(), simd::ActiveIsa()) !=
              isas.end());
}

TEST(ChaCha20SimdTest, EveryAvailableKernelMatchesRfc8439Vectors) {
  // §2.3.2 block vector and the A.1 #1/#2 blocks, generated through every
  // compiled-in kernel (forced, bypassing the PRIVAPPROX_SIMD default). The
  // nblocks=9 run makes the wide kernels take their vector path (8-way AVX2
  // + scalar remainder; 2x 4-way SSE2/NEON + remainder).
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  const std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                         0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::array<uint8_t, 12> zero_nonce{};
  const std::array<uint8_t, 32> zero_key{};
  for (const simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(simd::IsaName(isa));
    std::vector<uint8_t> keystream(9 * 64);
    // §2.3.2: key 00 01 .. 1f, counter 1 — first block of the run.
    ChaCha20BlocksIntoWith(isa, keystream.data(), key, nonce, 1, 9);
    const auto expected_first = ChaCha20Block(key, nonce, 1);
    EXPECT_TRUE(std::equal(expected_first.begin(), expected_first.end(),
                           keystream.begin()));
    EXPECT_EQ(keystream[0], 0x10);
    EXPECT_EQ(keystream[1], 0xf1);
    EXPECT_EQ(keystream[2], 0xe7);
    EXPECT_EQ(keystream[3], 0xe4);
    // A.1 #1 and #2: zero key/nonce, counters 0 and 1, one multi-block run.
    ChaCha20BlocksIntoWith(isa, keystream.data(), zero_key, zero_nonce, 0, 9);
    EXPECT_EQ(keystream[0], 0x76);
    EXPECT_EQ(keystream[1], 0xb8);
    EXPECT_EQ(keystream[2], 0xe0);
    EXPECT_EQ(keystream[3], 0xad);
    EXPECT_EQ(keystream[64 + 0], 0x9f);
    EXPECT_EQ(keystream[64 + 1], 0x07);
    EXPECT_EQ(keystream[64 + 2], 0xe7);
    EXPECT_EQ(keystream[64 + 3], 0xbe);
  }
}

TEST(ChaCha20SimdTest, MultiBlockMatchesRepeatedSingleBlock) {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(0xA0 + i);
  }
  const std::array<uint8_t, 12> nonce = {1, 2, 3, 4,  5,  6,
                                         7, 8, 9, 10, 11, 12};
  // Counter bases include the uint32 wraparound edge: lane counters must
  // wrap exactly like the scalar `counter++`.
  for (const uint32_t base : {0u, 1u, 1000u, 0xFFFFFFFAu}) {
    for (size_t nblocks = 1; nblocks <= 9; ++nblocks) {
      std::vector<uint8_t> expected(nblocks * 64);
      for (size_t b = 0; b < nblocks; ++b) {
        const auto block = ChaCha20Block(
            key, nonce, base + static_cast<uint32_t>(b));  // wraps mod 2^32
        std::copy(block.begin(), block.end(), expected.begin() + 64 * b);
      }
      for (const simd::Isa isa : simd::AvailableIsas()) {
        std::vector<uint8_t> actual(nblocks * 64, 0);
        ChaCha20BlocksIntoWith(isa, actual.data(), key, nonce, base, nblocks);
        EXPECT_EQ(actual, expected)
            << simd::IsaName(isa) << " nblocks=" << nblocks
            << " base=" << base;
      }
      std::vector<uint8_t> dispatched(nblocks * 64, 0);
      ChaCha20BlocksInto(dispatched.data(), key, nonce, base, nblocks);
      EXPECT_EQ(dispatched, expected) << "dispatched nblocks=" << nblocks;
    }
  }
}

TEST(ChaCha20SimdTest, ForcingUnavailableIsaThrows) {
  const auto isas = simd::AvailableIsas();
  for (const simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2,
                              simd::Isa::kNeon}) {
    if (std::find(isas.begin(), isas.end(), isa) != isas.end()) {
      continue;
    }
    std::array<uint8_t, 64> out;
    EXPECT_THROW(ChaCha20BlocksIntoWith(isa, out.data(), {}, {}, 0, 1),
                 std::invalid_argument)
        << simd::IsaName(isa);
  }
}

TEST(ChaCha20RngTest, DeterministicPerSeedAndStream) {
  ChaCha20Rng a = ChaCha20Rng::FromSeed(5, 1);
  ChaCha20Rng b = ChaCha20Rng::FromSeed(5, 1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(ChaCha20RngTest, DistinctStreamsDiffer) {
  ChaCha20Rng a = ChaCha20Rng::FromSeed(5, 1);
  ChaCha20Rng b = ChaCha20Rng::FromSeed(5, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(ChaCha20RngTest, BytesSpansBlockBoundaries) {
  ChaCha20Rng rng = ChaCha20Rng::FromSeed(7, 0);
  // Pull an odd prefix so subsequent reads straddle the 64-byte block edge.
  (void)rng.Bytes(13);
  const auto chunk = rng.Bytes(200);
  EXPECT_EQ(chunk.size(), 200u);
  // Same stream read in one go must agree.
  ChaCha20Rng replay = ChaCha20Rng::FromSeed(7, 0);
  const auto all = replay.Bytes(213);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(chunk[i], all[13 + i]);
  }
}

TEST(ChaCha20RngTest, FillBytesMultiBlockMatchesByteAtATime) {
  // FillBytes generates whole 64-byte blocks directly into the destination
  // and only stages partial blocks. The resulting stream must be
  // byte-for-byte identical to draining the same stream one byte at a time,
  // for spans that start mid-block, cover several whole blocks, and end
  // mid-block.
  const std::vector<size_t> spans = {13, 64, 171, 1, 63, 65, 128, 200, 5};
  size_t total = 0;
  for (size_t span : spans) {
    total += span;
  }
  ChaCha20Rng reference = ChaCha20Rng::FromSeed(21, 3);
  std::vector<uint8_t> expected(total);
  for (size_t i = 0; i < total; ++i) {
    reference.FillBytes(&expected[i], 1);  // staging path only
  }
  ChaCha20Rng rng = ChaCha20Rng::FromSeed(21, 3);
  std::vector<uint8_t> actual(total);
  size_t at = 0;
  for (size_t span : spans) {
    rng.FillBytes(actual.data() + at, span);
    at += span;
  }
  EXPECT_EQ(actual, expected);
}

TEST(ChaCha20RngTest, FillBytesWideSpansMatchByteAtATime) {
  // Spans long enough to push the dispatched multi-block engine through its
  // widest kernel (>= 8 blocks for AVX2) plus remainder blocks and staged
  // tails, with odd offsets in between so whole-block runs start at every
  // staging state. The one-byte drain only ever uses the scalar Refill path,
  // so agreement here is the scalar-vs-SIMD keystream identity pin.
  const std::vector<size_t> spans = {513, 3,  640, 64 * 8, 1,  64 * 9 + 7,
                                     62,  65, 7,   1024,   129};
  size_t total = 0;
  for (size_t span : spans) {
    total += span;
  }
  ChaCha20Rng reference = ChaCha20Rng::FromSeed(33, 4);
  std::vector<uint8_t> expected(total);
  for (size_t i = 0; i < total; ++i) {
    reference.FillBytes(&expected[i], 1);
  }
  ChaCha20Rng rng = ChaCha20Rng::FromSeed(33, 4);
  std::vector<uint8_t> actual(total);
  size_t at = 0;
  for (size_t span : spans) {
    rng.FillBytes(actual.data() + at, span);
    at += span;
  }
  EXPECT_EQ(actual, expected);
}

TEST(ChaCha20RngTest, NextUint64MatchesFillBytesAssembly) {
  // NextUint64's fast path reads 8 bytes straight out of the staged block;
  // it must consume exactly the same stream positions as a FillBytes(8) call
  // assembled little-endian — including when odd-length draws leave fewer
  // than 8 staged bytes and the fallback path kicks in.
  ChaCha20Rng a = ChaCha20Rng::FromSeed(77, 9);
  ChaCha20Rng b = ChaCha20Rng::FromSeed(77, 9);
  const std::vector<size_t> interleave = {0, 3, 13, 61, 1, 7, 0, 200};
  for (size_t skip : interleave) {
    if (skip > 0) {
      std::vector<uint8_t> scratch(skip);
      a.FillBytes(scratch.data(), skip);
      b.FillBytes(scratch.data(), skip);
    }
    for (int i = 0; i < 10; ++i) {
      uint8_t bytes[8];
      b.FillBytes(bytes, 8);
      uint64_t expected = 0;
      for (int j = 7; j >= 0; --j) {
        expected = (expected << 8) | bytes[j];
      }
      EXPECT_EQ(a.NextUint64(), expected) << "skip=" << skip << " i=" << i;
    }
  }
}

TEST(ChaCha20RngTest, OutputLooksUniform) {
  ChaCha20Rng rng = ChaCha20Rng::FromSeed(11, 0);
  const auto bytes = rng.Bytes(100000);
  std::array<int, 256> counts{};
  for (uint8_t b : bytes) {
    counts[b]++;
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), 100000.0 / 256.0, 120.0);
  }
}

// ------------------------------------------------------------ AnswerMessage

TEST(AnswerMessageTest, SerializeRoundTrip) {
  BitVector answer(11);
  answer.Set(3, true);
  answer.Set(10, true);
  const AnswerMessage msg{0xDEADBEEFCAFEBABEULL, answer};
  const AnswerMessage parsed = AnswerMessage::Deserialize(msg.Serialize());
  EXPECT_EQ(parsed, msg);
}

TEST(AnswerMessageTest, WireSizeMatchesSerialize) {
  for (size_t bits : {1u, 8u, 11u, 100u, 1024u}) {
    const AnswerMessage msg{1, BitVector(bits)};
    EXPECT_EQ(msg.Serialize().size(), AnswerMessage::WireSize(bits));
  }
}

TEST(AnswerMessageTest, TruncatedInputThrows) {
  EXPECT_THROW(AnswerMessage::Deserialize({1, 2, 3}), std::invalid_argument);
  AnswerMessage msg{1, BitVector(64)};
  auto bytes = msg.Serialize();
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(AnswerMessage::Deserialize(bytes), std::invalid_argument);
}

// -------------------------------------------------------------- XorSplitter

TEST(XorSplitterTest, SplitCombineRoundTrip) {
  XorSplitter splitter(3, ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> plaintext = {1, 2, 3, 4, 5, 0xFF, 0x80};
  const auto shares = splitter.Split(plaintext);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(XorSplitter::Combine(shares), plaintext);
}

TEST(XorSplitterTest, CombineIsOrderInvariant) {
  XorSplitter splitter(4, ChaCha20Rng::FromSeed(2, 0));
  const std::vector<uint8_t> plaintext = {9, 8, 7};
  auto shares = splitter.Split(plaintext);
  std::swap(shares[0], shares[3]);
  std::swap(shares[1], shares[2]);
  EXPECT_EQ(XorSplitter::Combine(shares), plaintext);
}

TEST(XorSplitterTest, SharesShareTheMid) {
  XorSplitter splitter(3, ChaCha20Rng::FromSeed(3, 0));
  const auto shares = splitter.Split({42});
  EXPECT_EQ(shares[0].message_id, shares[1].message_id);
  EXPECT_EQ(shares[1].message_id, shares[2].message_id);
}

TEST(XorSplitterTest, FreshMidPerMessage) {
  XorSplitter splitter(2, ChaCha20Rng::FromSeed(4, 0));
  std::set<uint64_t> mids;
  for (int i = 0; i < 1000; ++i) {
    mids.insert(splitter.Split({1}).front().message_id);
  }
  EXPECT_EQ(mids.size(), 1000u);
}

TEST(XorSplitterTest, IndividualSharesRevealNothing) {
  // Any n-1 shares are uniformly random: flipping the plaintext must not
  // change the marginal distribution of any single key share. We check a
  // weaker but concrete property: the key shares produced for two different
  // plaintexts with the same RNG state are identical, so they carry no
  // plaintext information.
  const std::vector<uint8_t> m1(64, 0x00);
  const std::vector<uint8_t> m2(64, 0xFF);
  XorSplitter s1(3, ChaCha20Rng::FromSeed(5, 7));
  XorSplitter s2(3, ChaCha20Rng::FromSeed(5, 7));
  const auto shares1 = s1.Split(m1);
  const auto shares2 = s2.Split(m2);
  // Shares 1..n-1 are the pad material — identical across plaintexts.
  EXPECT_EQ(shares1[1].payload, shares2[1].payload);
  EXPECT_EQ(shares1[2].payload, shares2[2].payload);
  // Share 0 (ME) differs exactly by the plaintext XOR.
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(shares1[0].payload[i] ^ shares2[0].payload[i], 0xFF);
  }
}

TEST(XorSplitterTest, CombineValidatesInput) {
  XorSplitter splitter(2, ChaCha20Rng::FromSeed(6, 0));
  auto shares = splitter.Split({1, 2, 3});
  auto bad_mid = shares;
  bad_mid[1].message_id ^= 1;
  EXPECT_THROW(XorSplitter::Combine(bad_mid), std::invalid_argument);
  auto bad_len = shares;
  bad_len[1].payload.push_back(0);
  EXPECT_THROW(XorSplitter::Combine(bad_len), std::invalid_argument);
  EXPECT_THROW(XorSplitter::Combine({shares[0]}), std::invalid_argument);
}

TEST(XorSplitterTest, RejectsSingleShare) {
  EXPECT_THROW(XorSplitter(1, ChaCha20Rng::FromSeed(7, 0)),
               std::invalid_argument);
}

TEST(XorSplitterTest, EmptyPayloadRoundTrips) {
  XorSplitter splitter(2, ChaCha20Rng::FromSeed(8, 0));
  const auto shares = splitter.Split({});
  EXPECT_TRUE(XorSplitter::Combine(shares).empty());
}

TEST(XorSplitterTest, SplitMessageIntoMatchesSplitPlusEncode) {
  // The arena encoder must consume the RNG in exactly the order Split does
  // and emit, per share, the same wire record Proxy::EncodeShare builds —
  // so the two client encode paths produce bit-identical broker contents.
  for (size_t num_shares : {2u, 3u, 5u}) {
    BitVector answer(27);
    answer.Set(0, true);
    answer.Set(13, true);
    answer.Set(26, true);
    const AnswerMessage message{0x1122334455667788ULL, answer};

    XorSplitter legacy(num_shares, ChaCha20Rng::FromSeed(99, 4));
    XorSplitter arena_splitter(num_shares, ChaCha20Rng::FromSeed(99, 4));
    EpochArena arena;
    std::vector<ShareView> views(num_shares);
    // Interleave several messages to exercise RNG state carry-over.
    for (int round = 0; round < 4; ++round) {
      const auto shares = legacy.Split(message.Serialize());
      arena_splitter.SplitMessageInto(message, arena, views);
      ASSERT_EQ(shares.size(), num_shares);
      for (size_t i = 0; i < num_shares; ++i) {
        EXPECT_EQ(views[i].message_id, shares[i].message_id);
        const std::vector<uint8_t> wire =
            proxy::Proxy::EncodeShare(shares[i]);
        ASSERT_EQ(views[i].size, wire.size());
        EXPECT_TRUE(std::equal(wire.begin(), wire.end(), views[i].data))
            << "share " << i << " round " << round;
        // payload() strips the 8-byte MID header.
        ASSERT_EQ(views[i].payload().size(), shares[i].payload.size());
        EXPECT_TRUE(std::equal(shares[i].payload.begin(),
                               shares[i].payload.end(),
                               views[i].payload().data()));
      }
    }
  }
}

TEST(XorSplitterTest, SplitMessageIntoValidatesSlotCount) {
  XorSplitter splitter(3, ChaCha20Rng::FromSeed(12, 0));
  EpochArena arena;
  std::vector<ShareView> wrong(2);
  EXPECT_THROW(
      splitter.SplitMessageInto(AnswerMessage{1, BitVector(4)}, arena, wrong),
      std::invalid_argument);
}

TEST(XorSplitterTest, SplitMessageIntoCombinesToPlaintext) {
  XorSplitter splitter(3, ChaCha20Rng::FromSeed(31, 2));
  BitVector answer(11);
  answer.Set(4, true);
  const AnswerMessage message{42, answer};
  EpochArena arena;
  std::vector<ShareView> views(3);
  splitter.SplitMessageInto(message, arena, views);
  std::vector<crypto::MessageShare> shares;
  for (const ShareView& view : views) {
    const auto payload = view.payload();
    shares.push_back(crypto::MessageShare{
        view.message_id,
        std::vector<uint8_t>(payload.begin(), payload.end())});
  }
  const AnswerMessage parsed =
      AnswerMessage::Deserialize(XorSplitter::Combine(shares));
  EXPECT_EQ(parsed, message);
}

// --------------------------------------------------------------------- RSA

TEST(RsaTest, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(21);
  const RsaKeyPair key = RsaKeyPair::Generate(rng, 512);
  for (int i = 0; i < 10; ++i) {
    const bignum::BigUint m =
        bignum::BigUint::RandomBelow(rng, key.modulus());
    EXPECT_EQ(key.Decrypt(key.Encrypt(m)), m);
  }
}

TEST(RsaTest, RejectsOversizedOperands) {
  Xoshiro256 rng(22);
  const RsaKeyPair key = RsaKeyPair::Generate(rng, 256);
  EXPECT_THROW(key.Encrypt(key.modulus()), std::invalid_argument);
  EXPECT_THROW(key.Decrypt(key.modulus() + bignum::BigUint::One()),
               std::invalid_argument);
  EXPECT_THROW(RsaKeyPair::Generate(rng, 32), std::invalid_argument);
}

TEST(RsaTest, ModulusHasRequestedSize) {
  Xoshiro256 rng(23);
  const RsaKeyPair key = RsaKeyPair::Generate(rng, 512);
  EXPECT_GE(key.modulus_bits(), 511u);
  EXPECT_LE(key.modulus_bits(), 512u);
}

// --------------------------------------------------------- GoldwasserMicali

TEST(GoldwasserMicaliTest, BitRoundTrip) {
  Xoshiro256 rng(31);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  for (int i = 0; i < 20; ++i) {
    const bool bit = (i % 2) == 0;
    EXPECT_EQ(key.DecryptBit(key.EncryptBit(bit, rng)), bit);
  }
}

TEST(GoldwasserMicaliTest, EncryptionIsProbabilistic) {
  Xoshiro256 rng(32);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  const auto c1 = key.EncryptBit(true, rng);
  const auto c2 = key.EncryptBit(true, rng);
  EXPECT_NE(c1, c2);  // fresh randomness per encryption
}

TEST(GoldwasserMicaliTest, BitVectorRoundTrip) {
  Xoshiro256 rng(33);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  BitVector bits(11);
  bits.Set(0, true);
  bits.Set(5, true);
  bits.Set(10, true);
  EXPECT_EQ(key.DecryptBits(key.EncryptBits(bits, rng)), bits);
}

TEST(GoldwasserMicaliTest, XorHomomorphism) {
  Xoshiro256 rng(34);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const auto ca = key.EncryptBit(a != 0, rng);
      const auto cb = key.EncryptBit(b != 0, rng);
      EXPECT_EQ(key.DecryptBit(key.HomomorphicXor(ca, cb)), (a ^ b) != 0);
    }
  }
}

// ----------------------------------------------------------------- Paillier

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(41);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  for (int i = 0; i < 10; ++i) {
    const bignum::BigUint m = bignum::BigUint::RandomBelow(rng, key.modulus());
    EXPECT_EQ(key.Decrypt(key.Encrypt(m, rng)), m);
  }
}

TEST(PaillierTest, AdditiveHomomorphism) {
  Xoshiro256 rng(42);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  const bignum::BigUint a(123456789), b(987654321);
  const auto ca = key.Encrypt(a, rng);
  const auto cb = key.Encrypt(b, rng);
  EXPECT_EQ(key.Decrypt(key.HomomorphicAdd(ca, cb)), a + b);
}

TEST(PaillierTest, ScalarMultiplication) {
  Xoshiro256 rng(43);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  const bignum::BigUint m(1000), k(37);
  const auto c = key.Encrypt(m, rng);
  EXPECT_EQ(key.Decrypt(key.HomomorphicScale(c, k)), m * k);
}

TEST(PaillierTest, RejectsOversizedMessage) {
  Xoshiro256 rng(44);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  EXPECT_THROW(key.Encrypt(key.modulus(), rng), std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::crypto
