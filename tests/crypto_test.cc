// Tests for the crypto substrate: ChaCha20 (against the RFC 8439 test
// vector), XOR share splitting, message framing, and the three public-key
// comparators (round-trips + homomorphic properties).

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/goldwasser_micali.h"
#include "crypto/message.h"
#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "crypto/xor_cipher.h"

namespace privapprox::crypto {
namespace {

// ----------------------------------------------------------------- ChaCha20

TEST(ChaCha20Test, Rfc8439BlockTestVector) {
  // RFC 8439 §2.3.2 test vector.
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  const std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                         0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = ChaCha20Block(key, nonce, 1);
  const std::array<uint8_t, 16> expected_head = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15,
      0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20, 0x71, 0xc4};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(block[i], expected_head[i]) << "byte " << i;
  }
  // Last four bytes of the RFC keystream block (".. a2 50 3c 4e").
  EXPECT_EQ(block[60], 0xa2);
  EXPECT_EQ(block[61], 0x50);
  EXPECT_EQ(block[62], 0x3c);
  EXPECT_EQ(block[63], 0x4e);
}

TEST(ChaCha20Test, Rfc8439AppendixA1Vectors) {
  // RFC 8439 A.1 test vector #1: all-zero key and nonce, counter 0.
  std::array<uint8_t, 32> key{};
  std::array<uint8_t, 12> nonce{};
  const auto block = ChaCha20Block(key, nonce, 0);
  const std::array<uint8_t, 16> expected_head = {
      0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90,
      0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86, 0xbd, 0x28};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(block[i], expected_head[i]) << "byte " << i;
  }
  // A.1 #2: same key/nonce, counter 1: keystream begins 9f 07 e7 be.
  const auto block1 = ChaCha20Block(key, nonce, 1);
  EXPECT_EQ(block1[0], 0x9f);
  EXPECT_EQ(block1[1], 0x07);
  EXPECT_EQ(block1[2], 0xe7);
  EXPECT_EQ(block1[3], 0xbe);
}

TEST(ChaCha20RngTest, DeterministicPerSeedAndStream) {
  ChaCha20Rng a = ChaCha20Rng::FromSeed(5, 1);
  ChaCha20Rng b = ChaCha20Rng::FromSeed(5, 1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(ChaCha20RngTest, DistinctStreamsDiffer) {
  ChaCha20Rng a = ChaCha20Rng::FromSeed(5, 1);
  ChaCha20Rng b = ChaCha20Rng::FromSeed(5, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(ChaCha20RngTest, BytesSpansBlockBoundaries) {
  ChaCha20Rng rng = ChaCha20Rng::FromSeed(7, 0);
  // Pull an odd prefix so subsequent reads straddle the 64-byte block edge.
  (void)rng.Bytes(13);
  const auto chunk = rng.Bytes(200);
  EXPECT_EQ(chunk.size(), 200u);
  // Same stream read in one go must agree.
  ChaCha20Rng replay = ChaCha20Rng::FromSeed(7, 0);
  const auto all = replay.Bytes(213);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(chunk[i], all[13 + i]);
  }
}

TEST(ChaCha20RngTest, OutputLooksUniform) {
  ChaCha20Rng rng = ChaCha20Rng::FromSeed(11, 0);
  const auto bytes = rng.Bytes(100000);
  std::array<int, 256> counts{};
  for (uint8_t b : bytes) {
    counts[b]++;
  }
  for (int count : counts) {
    EXPECT_NEAR(static_cast<double>(count), 100000.0 / 256.0, 120.0);
  }
}

// ------------------------------------------------------------ AnswerMessage

TEST(AnswerMessageTest, SerializeRoundTrip) {
  BitVector answer(11);
  answer.Set(3, true);
  answer.Set(10, true);
  const AnswerMessage msg{0xDEADBEEFCAFEBABEULL, answer};
  const AnswerMessage parsed = AnswerMessage::Deserialize(msg.Serialize());
  EXPECT_EQ(parsed, msg);
}

TEST(AnswerMessageTest, WireSizeMatchesSerialize) {
  for (size_t bits : {1u, 8u, 11u, 100u, 1024u}) {
    const AnswerMessage msg{1, BitVector(bits)};
    EXPECT_EQ(msg.Serialize().size(), AnswerMessage::WireSize(bits));
  }
}

TEST(AnswerMessageTest, TruncatedInputThrows) {
  EXPECT_THROW(AnswerMessage::Deserialize({1, 2, 3}), std::invalid_argument);
  AnswerMessage msg{1, BitVector(64)};
  auto bytes = msg.Serialize();
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(AnswerMessage::Deserialize(bytes), std::invalid_argument);
}

// -------------------------------------------------------------- XorSplitter

TEST(XorSplitterTest, SplitCombineRoundTrip) {
  XorSplitter splitter(3, ChaCha20Rng::FromSeed(1, 0));
  const std::vector<uint8_t> plaintext = {1, 2, 3, 4, 5, 0xFF, 0x80};
  const auto shares = splitter.Split(plaintext);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(XorSplitter::Combine(shares), plaintext);
}

TEST(XorSplitterTest, CombineIsOrderInvariant) {
  XorSplitter splitter(4, ChaCha20Rng::FromSeed(2, 0));
  const std::vector<uint8_t> plaintext = {9, 8, 7};
  auto shares = splitter.Split(plaintext);
  std::swap(shares[0], shares[3]);
  std::swap(shares[1], shares[2]);
  EXPECT_EQ(XorSplitter::Combine(shares), plaintext);
}

TEST(XorSplitterTest, SharesShareTheMid) {
  XorSplitter splitter(3, ChaCha20Rng::FromSeed(3, 0));
  const auto shares = splitter.Split({42});
  EXPECT_EQ(shares[0].message_id, shares[1].message_id);
  EXPECT_EQ(shares[1].message_id, shares[2].message_id);
}

TEST(XorSplitterTest, FreshMidPerMessage) {
  XorSplitter splitter(2, ChaCha20Rng::FromSeed(4, 0));
  std::set<uint64_t> mids;
  for (int i = 0; i < 1000; ++i) {
    mids.insert(splitter.Split({1}).front().message_id);
  }
  EXPECT_EQ(mids.size(), 1000u);
}

TEST(XorSplitterTest, IndividualSharesRevealNothing) {
  // Any n-1 shares are uniformly random: flipping the plaintext must not
  // change the marginal distribution of any single key share. We check a
  // weaker but concrete property: the key shares produced for two different
  // plaintexts with the same RNG state are identical, so they carry no
  // plaintext information.
  const std::vector<uint8_t> m1(64, 0x00);
  const std::vector<uint8_t> m2(64, 0xFF);
  XorSplitter s1(3, ChaCha20Rng::FromSeed(5, 7));
  XorSplitter s2(3, ChaCha20Rng::FromSeed(5, 7));
  const auto shares1 = s1.Split(m1);
  const auto shares2 = s2.Split(m2);
  // Shares 1..n-1 are the pad material — identical across plaintexts.
  EXPECT_EQ(shares1[1].payload, shares2[1].payload);
  EXPECT_EQ(shares1[2].payload, shares2[2].payload);
  // Share 0 (ME) differs exactly by the plaintext XOR.
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(shares1[0].payload[i] ^ shares2[0].payload[i], 0xFF);
  }
}

TEST(XorSplitterTest, CombineValidatesInput) {
  XorSplitter splitter(2, ChaCha20Rng::FromSeed(6, 0));
  auto shares = splitter.Split({1, 2, 3});
  auto bad_mid = shares;
  bad_mid[1].message_id ^= 1;
  EXPECT_THROW(XorSplitter::Combine(bad_mid), std::invalid_argument);
  auto bad_len = shares;
  bad_len[1].payload.push_back(0);
  EXPECT_THROW(XorSplitter::Combine(bad_len), std::invalid_argument);
  EXPECT_THROW(XorSplitter::Combine({shares[0]}), std::invalid_argument);
}

TEST(XorSplitterTest, RejectsSingleShare) {
  EXPECT_THROW(XorSplitter(1, ChaCha20Rng::FromSeed(7, 0)),
               std::invalid_argument);
}

TEST(XorSplitterTest, EmptyPayloadRoundTrips) {
  XorSplitter splitter(2, ChaCha20Rng::FromSeed(8, 0));
  const auto shares = splitter.Split({});
  EXPECT_TRUE(XorSplitter::Combine(shares).empty());
}

// --------------------------------------------------------------------- RSA

TEST(RsaTest, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(21);
  const RsaKeyPair key = RsaKeyPair::Generate(rng, 512);
  for (int i = 0; i < 10; ++i) {
    const bignum::BigUint m =
        bignum::BigUint::RandomBelow(rng, key.modulus());
    EXPECT_EQ(key.Decrypt(key.Encrypt(m)), m);
  }
}

TEST(RsaTest, RejectsOversizedOperands) {
  Xoshiro256 rng(22);
  const RsaKeyPair key = RsaKeyPair::Generate(rng, 256);
  EXPECT_THROW(key.Encrypt(key.modulus()), std::invalid_argument);
  EXPECT_THROW(key.Decrypt(key.modulus() + bignum::BigUint::One()),
               std::invalid_argument);
  EXPECT_THROW(RsaKeyPair::Generate(rng, 32), std::invalid_argument);
}

TEST(RsaTest, ModulusHasRequestedSize) {
  Xoshiro256 rng(23);
  const RsaKeyPair key = RsaKeyPair::Generate(rng, 512);
  EXPECT_GE(key.modulus_bits(), 511u);
  EXPECT_LE(key.modulus_bits(), 512u);
}

// --------------------------------------------------------- GoldwasserMicali

TEST(GoldwasserMicaliTest, BitRoundTrip) {
  Xoshiro256 rng(31);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  for (int i = 0; i < 20; ++i) {
    const bool bit = (i % 2) == 0;
    EXPECT_EQ(key.DecryptBit(key.EncryptBit(bit, rng)), bit);
  }
}

TEST(GoldwasserMicaliTest, EncryptionIsProbabilistic) {
  Xoshiro256 rng(32);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  const auto c1 = key.EncryptBit(true, rng);
  const auto c2 = key.EncryptBit(true, rng);
  EXPECT_NE(c1, c2);  // fresh randomness per encryption
}

TEST(GoldwasserMicaliTest, BitVectorRoundTrip) {
  Xoshiro256 rng(33);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  BitVector bits(11);
  bits.Set(0, true);
  bits.Set(5, true);
  bits.Set(10, true);
  EXPECT_EQ(key.DecryptBits(key.EncryptBits(bits, rng)), bits);
}

TEST(GoldwasserMicaliTest, XorHomomorphism) {
  Xoshiro256 rng(34);
  const auto key = GoldwasserMicaliKeyPair::Generate(rng, 256);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const auto ca = key.EncryptBit(a != 0, rng);
      const auto cb = key.EncryptBit(b != 0, rng);
      EXPECT_EQ(key.DecryptBit(key.HomomorphicXor(ca, cb)), (a ^ b) != 0);
    }
  }
}

// ----------------------------------------------------------------- Paillier

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(41);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  for (int i = 0; i < 10; ++i) {
    const bignum::BigUint m = bignum::BigUint::RandomBelow(rng, key.modulus());
    EXPECT_EQ(key.Decrypt(key.Encrypt(m, rng)), m);
  }
}

TEST(PaillierTest, AdditiveHomomorphism) {
  Xoshiro256 rng(42);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  const bignum::BigUint a(123456789), b(987654321);
  const auto ca = key.Encrypt(a, rng);
  const auto cb = key.Encrypt(b, rng);
  EXPECT_EQ(key.Decrypt(key.HomomorphicAdd(ca, cb)), a + b);
}

TEST(PaillierTest, ScalarMultiplication) {
  Xoshiro256 rng(43);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  const bignum::BigUint m(1000), k(37);
  const auto c = key.Encrypt(m, rng);
  EXPECT_EQ(key.Decrypt(key.HomomorphicScale(c, k)), m * k);
}

TEST(PaillierTest, RejectsOversizedMessage) {
  Xoshiro256 rng(44);
  const auto key = PaillierKeyPair::Generate(rng, 256);
  EXPECT_THROW(key.Encrypt(key.modulus(), rng), std::invalid_argument);
}

}  // namespace
}  // namespace privapprox::crypto
