# Empty dependencies file for bench_fig4a_sampling_sweep.
# This may be replaced when dependencies are built.
