file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stratified.dir/bench_ablation_stratified.cc.o"
  "CMakeFiles/bench_ablation_stratified.dir/bench_ablation_stratified.cc.o.d"
  "bench_ablation_stratified"
  "bench_ablation_stratified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stratified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
