# Empty dependencies file for bench_table1_utility_privacy.
# This may be replaced when dependencies are built.
