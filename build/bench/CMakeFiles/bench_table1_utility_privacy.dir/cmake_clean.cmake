file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_utility_privacy.dir/bench_table1_utility_privacy.cc.o"
  "CMakeFiles/bench_table1_utility_privacy.dir/bench_table1_utility_privacy.cc.o.d"
  "bench_table1_utility_privacy"
  "bench_table1_utility_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_utility_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
