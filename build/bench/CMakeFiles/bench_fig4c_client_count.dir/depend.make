# Empty dependencies file for bench_fig4c_client_count.
# This may be replaced when dependencies are built.
