# Empty compiler generated dependencies file for bench_ablation_commute.
# This may be replaced when dependencies are built.
