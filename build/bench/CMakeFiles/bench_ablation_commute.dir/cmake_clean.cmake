file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_commute.dir/bench_ablation_commute.cc.o"
  "CMakeFiles/bench_ablation_commute.dir/bench_ablation_commute.cc.o.d"
  "bench_ablation_commute"
  "bench_ablation_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
