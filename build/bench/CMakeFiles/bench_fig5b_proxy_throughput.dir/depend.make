# Empty dependencies file for bench_fig5b_proxy_throughput.
# This may be replaced when dependencies are built.
