# Empty compiler generated dependencies file for bench_fig5a_query_inversion.
# This may be replaced when dependencies are built.
