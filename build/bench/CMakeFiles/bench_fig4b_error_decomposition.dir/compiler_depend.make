# Empty compiler generated dependencies file for bench_fig4b_error_decomposition.
# This may be replaced when dependencies are built.
