# Empty dependencies file for bench_fig5c_rappor_comparison.
# This may be replaced when dependencies are built.
