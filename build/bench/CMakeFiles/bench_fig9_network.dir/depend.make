# Empty dependencies file for bench_fig9_network.
# This may be replaced when dependencies are built.
