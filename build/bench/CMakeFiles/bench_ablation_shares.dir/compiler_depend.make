# Empty compiler generated dependencies file for bench_ablation_shares.
# This may be replaced when dependencies are built.
