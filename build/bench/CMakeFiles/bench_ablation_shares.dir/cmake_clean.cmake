file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shares.dir/bench_ablation_shares.cc.o"
  "CMakeFiles/bench_ablation_shares.dir/bench_ablation_shares.cc.o.d"
  "bench_ablation_shares"
  "bench_ablation_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
