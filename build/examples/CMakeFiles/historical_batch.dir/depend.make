# Empty dependencies file for historical_batch.
# This may be replaced when dependencies are built.
