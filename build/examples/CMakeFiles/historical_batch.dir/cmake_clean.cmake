file(REMOVE_RECURSE
  "CMakeFiles/historical_batch.dir/historical_batch.cpp.o"
  "CMakeFiles/historical_batch.dir/historical_batch.cpp.o.d"
  "historical_batch"
  "historical_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
