# Empty compiler generated dependencies file for adaptive_analyst.
# This may be replaced when dependencies are built.
