file(REMOVE_RECURSE
  "CMakeFiles/adaptive_analyst.dir/adaptive_analyst.cpp.o"
  "CMakeFiles/adaptive_analyst.dir/adaptive_analyst.cpp.o.d"
  "adaptive_analyst"
  "adaptive_analyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_analyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
