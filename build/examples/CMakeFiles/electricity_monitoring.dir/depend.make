# Empty dependencies file for electricity_monitoring.
# This may be replaced when dependencies are built.
