file(REMOVE_RECURSE
  "CMakeFiles/electricity_monitoring.dir/electricity_monitoring.cpp.o"
  "CMakeFiles/electricity_monitoring.dir/electricity_monitoring.cpp.o.d"
  "electricity_monitoring"
  "electricity_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electricity_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
