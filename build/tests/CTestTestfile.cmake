# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/hypothesis_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/core_query_test[1]_include.cmake")
include("/root/repo/build/tests/query_wire_test[1]_include.cmake")
include("/root/repo/build/tests/core_rr_test[1]_include.cmake")
include("/root/repo/build/tests/core_privacy_test[1]_include.cmake")
include("/root/repo/build/tests/core_budget_test[1]_include.cmake")
include("/root/repo/build/tests/core_error_test[1]_include.cmake")
include("/root/repo/build/tests/stratified_sampling_test[1]_include.cmake")
include("/root/repo/build/tests/localdb_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/broker_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/aggregator_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/rappor_full_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/system_integration_test[1]_include.cmake")
include("/root/repo/build/tests/analyst_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
