# Empty compiler generated dependencies file for rappor_full_test.
# This may be replaced when dependencies are built.
