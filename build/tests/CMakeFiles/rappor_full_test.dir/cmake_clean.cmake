file(REMOVE_RECURSE
  "CMakeFiles/rappor_full_test.dir/rappor_full_test.cc.o"
  "CMakeFiles/rappor_full_test.dir/rappor_full_test.cc.o.d"
  "rappor_full_test"
  "rappor_full_test.pdb"
  "rappor_full_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rappor_full_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
