file(REMOVE_RECURSE
  "CMakeFiles/core_error_test.dir/core_error_test.cc.o"
  "CMakeFiles/core_error_test.dir/core_error_test.cc.o.d"
  "core_error_test"
  "core_error_test.pdb"
  "core_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
