# Empty dependencies file for core_rr_test.
# This may be replaced when dependencies are built.
