file(REMOVE_RECURSE
  "CMakeFiles/core_rr_test.dir/core_rr_test.cc.o"
  "CMakeFiles/core_rr_test.dir/core_rr_test.cc.o.d"
  "core_rr_test"
  "core_rr_test.pdb"
  "core_rr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
