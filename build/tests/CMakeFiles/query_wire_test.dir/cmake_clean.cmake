file(REMOVE_RECURSE
  "CMakeFiles/query_wire_test.dir/query_wire_test.cc.o"
  "CMakeFiles/query_wire_test.dir/query_wire_test.cc.o.d"
  "query_wire_test"
  "query_wire_test.pdb"
  "query_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
