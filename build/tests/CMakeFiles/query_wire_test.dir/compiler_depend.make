# Empty compiler generated dependencies file for query_wire_test.
# This may be replaced when dependencies are built.
