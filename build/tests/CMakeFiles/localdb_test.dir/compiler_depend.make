# Empty compiler generated dependencies file for localdb_test.
# This may be replaced when dependencies are built.
