file(REMOVE_RECURSE
  "CMakeFiles/localdb_test.dir/localdb_test.cc.o"
  "CMakeFiles/localdb_test.dir/localdb_test.cc.o.d"
  "localdb_test"
  "localdb_test.pdb"
  "localdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
