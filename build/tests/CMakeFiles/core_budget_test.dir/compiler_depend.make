# Empty compiler generated dependencies file for core_budget_test.
# This may be replaced when dependencies are built.
