
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_localdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
