file(REMOVE_RECURSE
  "CMakeFiles/privapprox_storage.dir/storage/crc32.cc.o"
  "CMakeFiles/privapprox_storage.dir/storage/crc32.cc.o.d"
  "CMakeFiles/privapprox_storage.dir/storage/response_store.cc.o"
  "CMakeFiles/privapprox_storage.dir/storage/response_store.cc.o.d"
  "CMakeFiles/privapprox_storage.dir/storage/segment_log.cc.o"
  "CMakeFiles/privapprox_storage.dir/storage/segment_log.cc.o.d"
  "libprivapprox_storage.a"
  "libprivapprox_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
