
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/crc32.cc" "src/CMakeFiles/privapprox_storage.dir/storage/crc32.cc.o" "gcc" "src/CMakeFiles/privapprox_storage.dir/storage/crc32.cc.o.d"
  "/root/repo/src/storage/response_store.cc" "src/CMakeFiles/privapprox_storage.dir/storage/response_store.cc.o" "gcc" "src/CMakeFiles/privapprox_storage.dir/storage/response_store.cc.o.d"
  "/root/repo/src/storage/segment_log.cc" "src/CMakeFiles/privapprox_storage.dir/storage/segment_log.cc.o" "gcc" "src/CMakeFiles/privapprox_storage.dir/storage/segment_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
