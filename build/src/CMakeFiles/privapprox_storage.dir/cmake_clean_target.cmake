file(REMOVE_RECURSE
  "libprivapprox_storage.a"
)
