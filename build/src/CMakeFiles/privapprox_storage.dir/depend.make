# Empty dependencies file for privapprox_storage.
# This may be replaced when dependencies are built.
