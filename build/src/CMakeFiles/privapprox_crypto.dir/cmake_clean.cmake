file(REMOVE_RECURSE
  "CMakeFiles/privapprox_crypto.dir/crypto/chacha20.cc.o"
  "CMakeFiles/privapprox_crypto.dir/crypto/chacha20.cc.o.d"
  "CMakeFiles/privapprox_crypto.dir/crypto/goldwasser_micali.cc.o"
  "CMakeFiles/privapprox_crypto.dir/crypto/goldwasser_micali.cc.o.d"
  "CMakeFiles/privapprox_crypto.dir/crypto/message.cc.o"
  "CMakeFiles/privapprox_crypto.dir/crypto/message.cc.o.d"
  "CMakeFiles/privapprox_crypto.dir/crypto/paillier.cc.o"
  "CMakeFiles/privapprox_crypto.dir/crypto/paillier.cc.o.d"
  "CMakeFiles/privapprox_crypto.dir/crypto/rsa.cc.o"
  "CMakeFiles/privapprox_crypto.dir/crypto/rsa.cc.o.d"
  "CMakeFiles/privapprox_crypto.dir/crypto/xor_cipher.cc.o"
  "CMakeFiles/privapprox_crypto.dir/crypto/xor_cipher.cc.o.d"
  "libprivapprox_crypto.a"
  "libprivapprox_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
