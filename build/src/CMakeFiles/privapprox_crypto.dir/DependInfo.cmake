
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/chacha20.cc" "src/CMakeFiles/privapprox_crypto.dir/crypto/chacha20.cc.o" "gcc" "src/CMakeFiles/privapprox_crypto.dir/crypto/chacha20.cc.o.d"
  "/root/repo/src/crypto/goldwasser_micali.cc" "src/CMakeFiles/privapprox_crypto.dir/crypto/goldwasser_micali.cc.o" "gcc" "src/CMakeFiles/privapprox_crypto.dir/crypto/goldwasser_micali.cc.o.d"
  "/root/repo/src/crypto/message.cc" "src/CMakeFiles/privapprox_crypto.dir/crypto/message.cc.o" "gcc" "src/CMakeFiles/privapprox_crypto.dir/crypto/message.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/CMakeFiles/privapprox_crypto.dir/crypto/paillier.cc.o" "gcc" "src/CMakeFiles/privapprox_crypto.dir/crypto/paillier.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/CMakeFiles/privapprox_crypto.dir/crypto/rsa.cc.o" "gcc" "src/CMakeFiles/privapprox_crypto.dir/crypto/rsa.cc.o.d"
  "/root/repo/src/crypto/xor_cipher.cc" "src/CMakeFiles/privapprox_crypto.dir/crypto/xor_cipher.cc.o" "gcc" "src/CMakeFiles/privapprox_crypto.dir/crypto/xor_cipher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
