file(REMOVE_RECURSE
  "libprivapprox_crypto.a"
)
