# Empty dependencies file for privapprox_crypto.
# This may be replaced when dependencies are built.
