
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bignum/biguint.cc" "src/CMakeFiles/privapprox_bignum.dir/bignum/biguint.cc.o" "gcc" "src/CMakeFiles/privapprox_bignum.dir/bignum/biguint.cc.o.d"
  "/root/repo/src/bignum/modular.cc" "src/CMakeFiles/privapprox_bignum.dir/bignum/modular.cc.o" "gcc" "src/CMakeFiles/privapprox_bignum.dir/bignum/modular.cc.o.d"
  "/root/repo/src/bignum/prime.cc" "src/CMakeFiles/privapprox_bignum.dir/bignum/prime.cc.o" "gcc" "src/CMakeFiles/privapprox_bignum.dir/bignum/prime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
