# Empty compiler generated dependencies file for privapprox_bignum.
# This may be replaced when dependencies are built.
