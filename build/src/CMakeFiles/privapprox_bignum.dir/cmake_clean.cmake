file(REMOVE_RECURSE
  "CMakeFiles/privapprox_bignum.dir/bignum/biguint.cc.o"
  "CMakeFiles/privapprox_bignum.dir/bignum/biguint.cc.o.d"
  "CMakeFiles/privapprox_bignum.dir/bignum/modular.cc.o"
  "CMakeFiles/privapprox_bignum.dir/bignum/modular.cc.o.d"
  "CMakeFiles/privapprox_bignum.dir/bignum/prime.cc.o"
  "CMakeFiles/privapprox_bignum.dir/bignum/prime.cc.o.d"
  "libprivapprox_bignum.a"
  "libprivapprox_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
