file(REMOVE_RECURSE
  "libprivapprox_bignum.a"
)
