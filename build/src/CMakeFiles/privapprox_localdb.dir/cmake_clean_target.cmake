file(REMOVE_RECURSE
  "libprivapprox_localdb.a"
)
