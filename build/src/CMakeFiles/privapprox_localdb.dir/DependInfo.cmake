
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localdb/database.cc" "src/CMakeFiles/privapprox_localdb.dir/localdb/database.cc.o" "gcc" "src/CMakeFiles/privapprox_localdb.dir/localdb/database.cc.o.d"
  "/root/repo/src/localdb/executor.cc" "src/CMakeFiles/privapprox_localdb.dir/localdb/executor.cc.o" "gcc" "src/CMakeFiles/privapprox_localdb.dir/localdb/executor.cc.o.d"
  "/root/repo/src/localdb/sql.cc" "src/CMakeFiles/privapprox_localdb.dir/localdb/sql.cc.o" "gcc" "src/CMakeFiles/privapprox_localdb.dir/localdb/sql.cc.o.d"
  "/root/repo/src/localdb/table.cc" "src/CMakeFiles/privapprox_localdb.dir/localdb/table.cc.o" "gcc" "src/CMakeFiles/privapprox_localdb.dir/localdb/table.cc.o.d"
  "/root/repo/src/localdb/value.cc" "src/CMakeFiles/privapprox_localdb.dir/localdb/value.cc.o" "gcc" "src/CMakeFiles/privapprox_localdb.dir/localdb/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
