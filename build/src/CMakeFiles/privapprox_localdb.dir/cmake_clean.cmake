file(REMOVE_RECURSE
  "CMakeFiles/privapprox_localdb.dir/localdb/database.cc.o"
  "CMakeFiles/privapprox_localdb.dir/localdb/database.cc.o.d"
  "CMakeFiles/privapprox_localdb.dir/localdb/executor.cc.o"
  "CMakeFiles/privapprox_localdb.dir/localdb/executor.cc.o.d"
  "CMakeFiles/privapprox_localdb.dir/localdb/sql.cc.o"
  "CMakeFiles/privapprox_localdb.dir/localdb/sql.cc.o.d"
  "CMakeFiles/privapprox_localdb.dir/localdb/table.cc.o"
  "CMakeFiles/privapprox_localdb.dir/localdb/table.cc.o.d"
  "CMakeFiles/privapprox_localdb.dir/localdb/value.cc.o"
  "CMakeFiles/privapprox_localdb.dir/localdb/value.cc.o.d"
  "libprivapprox_localdb.a"
  "libprivapprox_localdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_localdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
