# Empty dependencies file for privapprox_localdb.
# This may be replaced when dependencies are built.
