file(REMOVE_RECURSE
  "libprivapprox_baseline.a"
)
