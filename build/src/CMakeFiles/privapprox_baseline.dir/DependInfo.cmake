
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/rappor.cc" "src/CMakeFiles/privapprox_baseline.dir/baseline/rappor.cc.o" "gcc" "src/CMakeFiles/privapprox_baseline.dir/baseline/rappor.cc.o.d"
  "/root/repo/src/baseline/rappor_full.cc" "src/CMakeFiles/privapprox_baseline.dir/baseline/rappor_full.cc.o" "gcc" "src/CMakeFiles/privapprox_baseline.dir/baseline/rappor_full.cc.o.d"
  "/root/repo/src/baseline/splitx.cc" "src/CMakeFiles/privapprox_baseline.dir/baseline/splitx.cc.o" "gcc" "src/CMakeFiles/privapprox_baseline.dir/baseline/splitx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
