file(REMOVE_RECURSE
  "CMakeFiles/privapprox_baseline.dir/baseline/rappor.cc.o"
  "CMakeFiles/privapprox_baseline.dir/baseline/rappor.cc.o.d"
  "CMakeFiles/privapprox_baseline.dir/baseline/rappor_full.cc.o"
  "CMakeFiles/privapprox_baseline.dir/baseline/rappor_full.cc.o.d"
  "CMakeFiles/privapprox_baseline.dir/baseline/splitx.cc.o"
  "CMakeFiles/privapprox_baseline.dir/baseline/splitx.cc.o.d"
  "libprivapprox_baseline.a"
  "libprivapprox_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
