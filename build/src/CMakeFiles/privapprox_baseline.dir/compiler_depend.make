# Empty compiler generated dependencies file for privapprox_baseline.
# This may be replaced when dependencies are built.
