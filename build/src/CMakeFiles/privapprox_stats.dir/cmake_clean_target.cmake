file(REMOVE_RECURSE
  "libprivapprox_stats.a"
)
