# Empty compiler generated dependencies file for privapprox_stats.
# This may be replaced when dependencies are built.
