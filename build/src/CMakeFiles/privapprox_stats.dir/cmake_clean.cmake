file(REMOVE_RECURSE
  "CMakeFiles/privapprox_stats.dir/stats/hypothesis.cc.o"
  "CMakeFiles/privapprox_stats.dir/stats/hypothesis.cc.o.d"
  "CMakeFiles/privapprox_stats.dir/stats/moments.cc.o"
  "CMakeFiles/privapprox_stats.dir/stats/moments.cc.o.d"
  "CMakeFiles/privapprox_stats.dir/stats/special_functions.cc.o"
  "CMakeFiles/privapprox_stats.dir/stats/special_functions.cc.o.d"
  "CMakeFiles/privapprox_stats.dir/stats/srs.cc.o"
  "CMakeFiles/privapprox_stats.dir/stats/srs.cc.o.d"
  "CMakeFiles/privapprox_stats.dir/stats/stratified.cc.o"
  "CMakeFiles/privapprox_stats.dir/stats/stratified.cc.o.d"
  "libprivapprox_stats.a"
  "libprivapprox_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
