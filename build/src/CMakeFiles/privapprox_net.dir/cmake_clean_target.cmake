file(REMOVE_RECURSE
  "libprivapprox_net.a"
)
