file(REMOVE_RECURSE
  "CMakeFiles/privapprox_net.dir/net/link.cc.o"
  "CMakeFiles/privapprox_net.dir/net/link.cc.o.d"
  "CMakeFiles/privapprox_net.dir/net/topology.cc.o"
  "CMakeFiles/privapprox_net.dir/net/topology.cc.o.d"
  "libprivapprox_net.a"
  "libprivapprox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
