# Empty dependencies file for privapprox_net.
# This may be replaced when dependencies are built.
