# Empty dependencies file for privapprox_common.
# This may be replaced when dependencies are built.
