file(REMOVE_RECURSE
  "libprivapprox_common.a"
)
