file(REMOVE_RECURSE
  "CMakeFiles/privapprox_common.dir/common/bitvector.cc.o"
  "CMakeFiles/privapprox_common.dir/common/bitvector.cc.o.d"
  "CMakeFiles/privapprox_common.dir/common/histogram.cc.o"
  "CMakeFiles/privapprox_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/privapprox_common.dir/common/logging.cc.o"
  "CMakeFiles/privapprox_common.dir/common/logging.cc.o.d"
  "CMakeFiles/privapprox_common.dir/common/rng.cc.o"
  "CMakeFiles/privapprox_common.dir/common/rng.cc.o.d"
  "CMakeFiles/privapprox_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/privapprox_common.dir/common/thread_pool.cc.o.d"
  "libprivapprox_common.a"
  "libprivapprox_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
