file(REMOVE_RECURSE
  "CMakeFiles/privapprox_runtime.dir/aggregator/aggregator.cc.o"
  "CMakeFiles/privapprox_runtime.dir/aggregator/aggregator.cc.o.d"
  "CMakeFiles/privapprox_runtime.dir/aggregator/historical.cc.o"
  "CMakeFiles/privapprox_runtime.dir/aggregator/historical.cc.o.d"
  "CMakeFiles/privapprox_runtime.dir/analyst/analyst.cc.o"
  "CMakeFiles/privapprox_runtime.dir/analyst/analyst.cc.o.d"
  "CMakeFiles/privapprox_runtime.dir/client/client.cc.o"
  "CMakeFiles/privapprox_runtime.dir/client/client.cc.o.d"
  "CMakeFiles/privapprox_runtime.dir/proxy/proxy.cc.o"
  "CMakeFiles/privapprox_runtime.dir/proxy/proxy.cc.o.d"
  "CMakeFiles/privapprox_runtime.dir/system/system.cc.o"
  "CMakeFiles/privapprox_runtime.dir/system/system.cc.o.d"
  "libprivapprox_runtime.a"
  "libprivapprox_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
