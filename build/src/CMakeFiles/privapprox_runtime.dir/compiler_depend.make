# Empty compiler generated dependencies file for privapprox_runtime.
# This may be replaced when dependencies are built.
