file(REMOVE_RECURSE
  "libprivapprox_runtime.a"
)
