
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/join.cc" "src/CMakeFiles/privapprox_engine.dir/engine/join.cc.o" "gcc" "src/CMakeFiles/privapprox_engine.dir/engine/join.cc.o.d"
  "/root/repo/src/engine/pipeline.cc" "src/CMakeFiles/privapprox_engine.dir/engine/pipeline.cc.o" "gcc" "src/CMakeFiles/privapprox_engine.dir/engine/pipeline.cc.o.d"
  "/root/repo/src/engine/window.cc" "src/CMakeFiles/privapprox_engine.dir/engine/window.cc.o" "gcc" "src/CMakeFiles/privapprox_engine.dir/engine/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
