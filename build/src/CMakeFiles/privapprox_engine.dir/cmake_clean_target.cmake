file(REMOVE_RECURSE
  "libprivapprox_engine.a"
)
