# Empty dependencies file for privapprox_engine.
# This may be replaced when dependencies are built.
