file(REMOVE_RECURSE
  "CMakeFiles/privapprox_engine.dir/engine/join.cc.o"
  "CMakeFiles/privapprox_engine.dir/engine/join.cc.o.d"
  "CMakeFiles/privapprox_engine.dir/engine/pipeline.cc.o"
  "CMakeFiles/privapprox_engine.dir/engine/pipeline.cc.o.d"
  "CMakeFiles/privapprox_engine.dir/engine/window.cc.o"
  "CMakeFiles/privapprox_engine.dir/engine/window.cc.o.d"
  "libprivapprox_engine.a"
  "libprivapprox_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
