file(REMOVE_RECURSE
  "CMakeFiles/privapprox_workload.dir/workload/electricity.cc.o"
  "CMakeFiles/privapprox_workload.dir/workload/electricity.cc.o.d"
  "CMakeFiles/privapprox_workload.dir/workload/synthetic.cc.o"
  "CMakeFiles/privapprox_workload.dir/workload/synthetic.cc.o.d"
  "CMakeFiles/privapprox_workload.dir/workload/taxi.cc.o"
  "CMakeFiles/privapprox_workload.dir/workload/taxi.cc.o.d"
  "libprivapprox_workload.a"
  "libprivapprox_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
