
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/electricity.cc" "src/CMakeFiles/privapprox_workload.dir/workload/electricity.cc.o" "gcc" "src/CMakeFiles/privapprox_workload.dir/workload/electricity.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/privapprox_workload.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/privapprox_workload.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/taxi.cc" "src/CMakeFiles/privapprox_workload.dir/workload/taxi.cc.o" "gcc" "src/CMakeFiles/privapprox_workload.dir/workload/taxi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_localdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
