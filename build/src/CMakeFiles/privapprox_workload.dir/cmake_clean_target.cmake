file(REMOVE_RECURSE
  "libprivapprox_workload.a"
)
