# Empty dependencies file for privapprox_workload.
# This may be replaced when dependencies are built.
