file(REMOVE_RECURSE
  "CMakeFiles/privapprox_core.dir/core/answer.cc.o"
  "CMakeFiles/privapprox_core.dir/core/answer.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/budget.cc.o"
  "CMakeFiles/privapprox_core.dir/core/budget.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/error_estimation.cc.o"
  "CMakeFiles/privapprox_core.dir/core/error_estimation.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/inversion.cc.o"
  "CMakeFiles/privapprox_core.dir/core/inversion.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/privacy.cc.o"
  "CMakeFiles/privapprox_core.dir/core/privacy.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/query.cc.o"
  "CMakeFiles/privapprox_core.dir/core/query.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/query_wire.cc.o"
  "CMakeFiles/privapprox_core.dir/core/query_wire.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/randomized_response.cc.o"
  "CMakeFiles/privapprox_core.dir/core/randomized_response.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/sampling.cc.o"
  "CMakeFiles/privapprox_core.dir/core/sampling.cc.o.d"
  "CMakeFiles/privapprox_core.dir/core/stratified_sampling.cc.o"
  "CMakeFiles/privapprox_core.dir/core/stratified_sampling.cc.o.d"
  "libprivapprox_core.a"
  "libprivapprox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
