# Empty compiler generated dependencies file for privapprox_core.
# This may be replaced when dependencies are built.
