
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/answer.cc" "src/CMakeFiles/privapprox_core.dir/core/answer.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/answer.cc.o.d"
  "/root/repo/src/core/budget.cc" "src/CMakeFiles/privapprox_core.dir/core/budget.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/budget.cc.o.d"
  "/root/repo/src/core/error_estimation.cc" "src/CMakeFiles/privapprox_core.dir/core/error_estimation.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/error_estimation.cc.o.d"
  "/root/repo/src/core/inversion.cc" "src/CMakeFiles/privapprox_core.dir/core/inversion.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/inversion.cc.o.d"
  "/root/repo/src/core/privacy.cc" "src/CMakeFiles/privapprox_core.dir/core/privacy.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/privacy.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/privapprox_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/query_wire.cc" "src/CMakeFiles/privapprox_core.dir/core/query_wire.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/query_wire.cc.o.d"
  "/root/repo/src/core/randomized_response.cc" "src/CMakeFiles/privapprox_core.dir/core/randomized_response.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/randomized_response.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/CMakeFiles/privapprox_core.dir/core/sampling.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/sampling.cc.o.d"
  "/root/repo/src/core/stratified_sampling.cc" "src/CMakeFiles/privapprox_core.dir/core/stratified_sampling.cc.o" "gcc" "src/CMakeFiles/privapprox_core.dir/core/stratified_sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privapprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/privapprox_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
