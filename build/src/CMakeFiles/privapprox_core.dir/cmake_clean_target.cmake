file(REMOVE_RECURSE
  "libprivapprox_core.a"
)
