# Empty compiler generated dependencies file for privapprox_broker.
# This may be replaced when dependencies are built.
