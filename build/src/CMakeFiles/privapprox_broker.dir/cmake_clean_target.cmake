file(REMOVE_RECURSE
  "libprivapprox_broker.a"
)
