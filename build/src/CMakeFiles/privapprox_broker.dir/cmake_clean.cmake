file(REMOVE_RECURSE
  "CMakeFiles/privapprox_broker.dir/broker/broker.cc.o"
  "CMakeFiles/privapprox_broker.dir/broker/broker.cc.o.d"
  "CMakeFiles/privapprox_broker.dir/broker/topic.cc.o"
  "CMakeFiles/privapprox_broker.dir/broker/topic.cc.o.d"
  "libprivapprox_broker.a"
  "libprivapprox_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privapprox_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
