#!/usr/bin/env bash
# Kill -9 a running daemon and relaunch it on the same port and data dir.
#
#   chaos_restart.sh <name>
#
# Expects, in the current directory:
#   <name>.pid   pid of the live daemon
#   <name>.cmd   the exact command line to relaunch it ("exec ./... --port=...")
#
# The relaunched daemon's pid replaces <name>.pid and its output goes to
# <name>.restart.log; the script blocks until the daemon prints its
# "listening" line (i.e. crash recovery finished and the port is bound), so
# by the time the caller's hook returns the endpoint is live again. This is
# the CI chaos job's --chaos-cmd: SIGKILL means no destructors, no flushes —
# whatever the fsync policy put on disk is all the restarted daemon gets.
set -euo pipefail

name="$1"
pid="$(cat "$name.pid")"

kill -9 "$pid"
while kill -0 "$pid" 2>/dev/null; do sleep 0.05; done
echo "chaos_restart: killed $name (pid $pid)"

sh -c "$(cat "$name.cmd")" > "$name.restart.log" 2>&1 &
echo $! > "$name.pid"

for _ in $(seq 1 200); do
  if grep -q listening "$name.restart.log" 2>/dev/null; then
    echo "chaos_restart: $name back up (pid $(cat "$name.pid"))"
    exit 0
  fi
  sleep 0.05
done
echo "chaos_restart: $name never came back" >&2
cat "$name.restart.log" >&2
exit 1
